#include "radio/interference.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace idde::radio {

void RadioEnvironment::check() const {
  util::validate(gain.size() == server_count * user_count,
                 "radio environment: gain matrix shape mismatch");
  util::validate(power.size() == user_count,
                 "radio environment: power vector shape mismatch");
  util::validate(bandwidth.size() == server_count * channels_per_server,
                 "radio environment: bandwidth shape mismatch");
  util::validate(covering_servers.size() == user_count,
                 "radio environment: coverage shape mismatch");
  util::validate(channels_per_server > 0,
                 "radio environment: servers must expose channels");
  util::validate(noise_watts >= 0.0, "radio environment: negative noise power");
  for (const double g : gain) {
    util::validate(g >= 0.0, "radio environment: negative gain");
  }
  for (const double p : power) {
    util::validate(p > 0.0, "radio environment: non-positive power");
  }
  for (const double b : bandwidth) {
    util::validate(b > 0.0, "radio environment: non-positive bandwidth");
  }
  for (const auto& servers : covering_servers) {
    util::validate(std::is_sorted(servers.begin(), servers.end()),
                   "radio environment: coverage sets must be sorted");
    for (const std::size_t i : servers) {
      util::validate(i < server_count,
                     "radio environment: coverage server out of range");
    }
  }
}

InterferenceField::InterferenceField(const RadioEnvironment& env)
    : env_(&env),
      allocation_(env.user_count, kUnallocated),
      power_sum_(env.server_count * env.channels_per_server, 0.0),
      received_(env.server_count * env.channels_per_server * env.server_count,
                0.0),
      users_on_(env.server_count * env.channels_per_server, 0),
      slot_version_(env.server_count * env.channels_per_server, 0) {}

void InterferenceField::add_user(std::size_t user, ChannelSlot slot) {
  IDDE_EXPECTS(user < env_->user_count);
  IDDE_EXPECTS(slot.allocated());
  IDDE_EXPECTS(slot.server < env_->server_count);
  IDDE_EXPECTS(slot.channel < env_->channels_per_server);
  IDDE_ASSERT(!allocation_[user].allocated(), "user already allocated");

  allocation_[user] = slot;
  const double p = env_->power[user];
  power_sum_[chan_index(slot)] += p;
  ++users_on_[chan_index(slot)];
  double* recv_row = received_.data() + chan_index(slot) * env_->server_count;
  for (std::size_t i = 0; i < env_->server_count; ++i) {
    recv_row[i] += env_->gain_at(i, user) * p;
  }
  ++slot_version_[chan_index(slot)];
  last_move_ = MoveDelta{user, kUnallocated, slot, ++version_};
}

void InterferenceField::remove_user(std::size_t user) {
  IDDE_EXPECTS(user < env_->user_count);
  const ChannelSlot slot = allocation_[user];
  if (!slot.allocated()) return;
  const double p = env_->power[user];
  power_sum_[chan_index(slot)] -= p;
  double* recv_row = received_.data() + chan_index(slot) * env_->server_count;
  for (std::size_t i = 0; i < env_->server_count; ++i) {
    recv_row[i] -= env_->gain_at(i, user) * p;
  }
  IDDE_ASSERT(users_on_[chan_index(slot)] > 0, "channel count underflow");
  if (--users_on_[chan_index(slot)] == 0) {
    // Zero the emptied channel exactly (see header note on residues).
    power_sum_[chan_index(slot)] = 0.0;
    for (std::size_t i = 0; i < env_->server_count; ++i) recv_row[i] = 0.0;
  }
  allocation_[user] = kUnallocated;
  ++slot_version_[chan_index(slot)];
  last_move_ = MoveDelta{user, slot, kUnallocated, ++version_};
}

void InterferenceField::move_user(std::size_t user, ChannelSlot slot) {
  const ChannelSlot from = allocation_[user];
  remove_user(user);
  if (slot.allocated()) add_user(user, slot);
  // Report remove + add as one delta so consumers see both perturbed slots.
  last_move_ = MoveDelta{user, from, slot.allocated() ? slot : kUnallocated,
                         version_};
}

void InterferenceField::clear() {
  std::fill(power_sum_.begin(), power_sum_.end(), 0.0);
  std::fill(received_.begin(), received_.end(), 0.0);
  std::fill(allocation_.begin(), allocation_.end(), kUnallocated);
  std::fill(users_on_.begin(), users_on_.end(), 0);
  for (std::uint64_t& v : slot_version_) ++v;
  last_move_ = MoveDelta{ChannelSlot::kNone, kUnallocated, kUnallocated,
                         ++version_};
}

double InterferenceField::in_cell_power_excluding_watts(std::size_t user,
                                                  ChannelSlot slot) const {
  if (allocation_[user] == slot) {
    // Alone on the channel: exactly zero. Subtracting the user's own power
    // from the running sum would leave an O(eps * watts) residue, which is
    // *larger* than the -174 dBm noise floor and would corrupt the SINR.
    if (users_on_[chan_index(slot)] == 1) return 0.0;
    return std::max(power_sum_[chan_index(slot)] - env_->power[user], 0.0);
  }
  return power_sum_[chan_index(slot)];
}

double InterferenceField::cross_cell_interference_watts(std::size_t user,
                                                  ChannelSlot slot) const {
  const ChannelSlot current = allocation_[user];
  double total = 0.0;
  for (const std::size_t o : env_->covering_servers[user]) {
    if (o == slot.server) continue;
    const std::size_t ox =
        o * env_->channels_per_server + slot.channel;
    // Exclude the user's own current transmission if it lands in this sum;
    // when the user is alone there, the row contributes exactly zero (see
    // in_cell_power_excluding_watts for the residue rationale).
    if (current.allocated() && current.server == o &&
        current.channel == slot.channel) {
      if (users_on_[ox] == 1) continue;
      total += received_[ox * env_->server_count + slot.server] -
               env_->gain_at(slot.server, user) * env_->power[user];
    } else {
      total += received_[ox * env_->server_count + slot.server];
    }
  }
  return std::max(total, 0.0);
}

double InterferenceField::sinr(std::size_t user, ChannelSlot slot) const {
  IDDE_EXPECTS(user < env_->user_count);
  IDDE_EXPECTS(slot.allocated());
  const double g = env_->gain_at(slot.server, user);
  const double signal = g * env_->power[user];
  const double in_cell = g * in_cell_power_excluding_watts(user, slot);
  const double cross = cross_cell_interference_watts(user, slot);
  return signal / (in_cell + cross + env_->noise_watts);
}

double InterferenceField::rate_mbps(std::size_t user, ChannelSlot slot) const {
  const double r = sinr(user, slot);
  return env_->bandwidth_mbps_at(slot.server, slot.channel) * std::log2(1.0 + r);
}

double InterferenceField::benefit(std::size_t user, ChannelSlot slot) const {
  IDDE_EXPECTS(user < env_->user_count);
  IDDE_EXPECTS(slot.allocated());
  const double g = env_->gain_at(slot.server, user);
  const double p = env_->power[user];
  const double signal = g * p;
  // Eq. (12): the channel power sum includes u_j itself and there is no
  // noise term, so the benefit is bounded and comparisons never divide by
  // zero (the user's own power keeps the denominator positive).
  const double in_cell = g * (in_cell_power_excluding_watts(user, slot) + p);
  const double cross = cross_cell_interference_watts(user, slot);
  return signal / (in_cell + cross);
}

double sinr_reference(const RadioEnvironment& env,
                      std::span<const ChannelSlot> allocation,
                      std::size_t user, ChannelSlot slot) {
  IDDE_EXPECTS(allocation.size() == env.user_count);
  IDDE_EXPECTS(slot.allocated());
  const double g = env.gain_at(slot.server, user);
  double in_cell = 0.0;
  double cross = 0.0;
  const auto& covering = env.covering_servers[user];
  for (std::size_t t = 0; t < env.user_count; ++t) {
    if (t == user) continue;
    const ChannelSlot ts = allocation[t];
    if (!ts.allocated() || ts.channel != slot.channel) continue;
    if (ts.server == slot.server) {
      in_cell += env.power[t];
    } else if (std::binary_search(covering.begin(), covering.end(),
                                  ts.server)) {
      cross += env.gain_at(slot.server, t) * env.power[t];
    }
  }
  return g * env.power[user] / (g * in_cell + cross + env.noise_watts);
}

double benefit_reference(const RadioEnvironment& env,
                         std::span<const ChannelSlot> allocation,
                         std::size_t user, ChannelSlot slot) {
  IDDE_EXPECTS(allocation.size() == env.user_count);
  IDDE_EXPECTS(slot.allocated());
  const double g = env.gain_at(slot.server, user);
  // Eq. (12): the in-cell sum includes u_j's own power and there is no
  // noise term (cf. benefit() on the incremental field).
  double in_cell = env.power[user];
  double cross = 0.0;
  const auto& covering = env.covering_servers[user];
  for (std::size_t t = 0; t < env.user_count; ++t) {
    if (t == user) continue;
    const ChannelSlot ts = allocation[t];
    if (!ts.allocated() || ts.channel != slot.channel) continue;
    if (ts.server == slot.server) {
      in_cell += env.power[t];
    } else if (std::binary_search(covering.begin(), covering.end(),
                                  ts.server)) {
      cross += env.gain_at(slot.server, t) * env.power[t];
    }
  }
  return g * env.power[user] / (g * in_cell + cross);
}

}  // namespace idde::radio
