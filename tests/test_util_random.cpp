// Determinism, range and distribution-shape tests for the RNG substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/random.hpp"

namespace {

using idde::util::Rng;
using idde::util::SplitMix64;
using idde::util::Xoshiro256;

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, ForkIsIndependentOfParentUse) {
  Xoshiro256 a(7);
  const Xoshiro256 child_before = a.fork(3);
  a();  // advancing the parent after forking must not change the child
  Xoshiro256 child_copy = child_before;
  Xoshiro256 again = Xoshiro256(7).fork(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child_copy(), again());
}

TEST(Xoshiro256, ForksWithDifferentIdsDiverge) {
  Xoshiro256 a(7);
  Xoshiro256 f1 = a.fork(1);
  Xoshiro256 f2 = a.fork(2);
  EXPECT_NE(f1(), f2());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 9);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, IndexStaysBelowBound) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Rng, IndexIsApproximatelyUniform) {
  Rng rng(7);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.index(8)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 8.0, 0.05 * n / 8.0);
  }
}

TEST(Rng, BernoulliEdges) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(10);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(0.5), 0.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalPath) {
  Rng rng(16);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(Rng, ZipfRankZeroMostPopular) {
  Rng rng(17);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.zipf(5, 1.0)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[4]);
}

TEST(Rng, ZipfExponentZeroIsUniform) {
  Rng rng(18);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.zipf(4, 0.0)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 4.0, 0.05 * n / 4.0);
  }
}

TEST(Rng, ZipfSingletonAlwaysZero) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.zipf(1, 2.0), 0u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(20);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(21);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const std::vector<int> original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is ~1/50!
}

TEST(Rng, SampleIndicesAreDistinctAndInRange) {
  Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_indices(20, 8);
    EXPECT_EQ(sample.size(), 8u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (const std::size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(Rng, SampleAllIsPermutation) {
  Rng rng(23);
  auto sample = rng.sample_indices(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleZeroIsEmpty) {
  Rng rng(24);
  EXPECT_TRUE(rng.sample_indices(5, 0).empty());
}

TEST(Rng, PickReturnsMemberAndCoversAll) {
  Rng rng(25);
  const std::vector<int> items{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.pick(items));
  EXPECT_EQ(seen, (std::set<int>{10, 20, 30}));
}

TEST(Rng, ForkedStreamsAreReproducible) {
  Rng a(99);
  Rng b(99);
  Rng fa = a.fork(5);
  Rng fb = b.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.uniform(), fb.uniform());
}

// Property sweep: bounded draws stay unbiased across bound sizes.
class BoundedDrawTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BoundedDrawTest, ChiSquaredWithinTolerance) {
  const std::size_t buckets = GetParam();
  Rng rng(1000 + buckets);
  std::vector<double> counts(buckets, 0.0);
  const std::size_t n = 20000 * buckets;
  for (std::size_t i = 0; i < n; ++i) ++counts[rng.index(buckets)];
  const double expected = static_cast<double>(n) / buckets;
  double chi2 = 0.0;
  for (const double c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // dof = buckets-1; mean dof, stddev sqrt(2*dof): allow 6 sigma.
  const double dof = static_cast<double>(buckets - 1);
  EXPECT_LT(chi2, dof + 6.0 * std::sqrt(2.0 * dof) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Bounds, BoundedDrawTest,
                         ::testing::Values(2, 3, 7, 10, 16, 33, 100));

}  // namespace
