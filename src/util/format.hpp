// Minimal "{}"-substitution formatting, standing in for std::format (not in
// libstdc++ 12). Only positional "{}" placeholders are supported; values are
// rendered with sensible defaults (%.6g for floating point). Call sites that
// need width or precision control format the value explicitly first.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>

namespace idde::util {

namespace detail {

inline void append_value(std::string& out, std::string_view v) { out += v; }
inline void append_value(std::string& out, const std::string& v) { out += v; }
inline void append_value(std::string& out, const char* v) { out += v; }
inline void append_value(std::string& out, char v) { out.push_back(v); }
inline void append_value(std::string& out, bool v) {
  out += v ? "true" : "false";
}

template <typename T>
  requires std::is_integral_v<T> && (!std::is_same_v<T, bool>) &&
           (!std::is_same_v<T, char>)
void append_value(std::string& out, T v) {
  out += std::to_string(v);
}

template <typename T>
  requires std::is_floating_point_v<T>
void append_value(std::string& out, T v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", static_cast<double>(v));
  out += buf;
}

inline void format_impl(std::string& out, std::string_view fmt) { out += fmt; }

template <typename First, typename... Rest>
void format_impl(std::string& out, std::string_view fmt, First&& first,
                 Rest&&... rest) {
  const std::size_t brace = fmt.find("{}");
  if (brace == std::string_view::npos) {
    out += fmt;
    return;  // more arguments than placeholders: extras are dropped
  }
  out += fmt.substr(0, brace);
  append_value(out, std::forward<First>(first));
  format_impl(out, fmt.substr(brace + 2), std::forward<Rest>(rest)...);
}

}  // namespace detail

/// Replaces successive "{}" in `fmt` with the arguments, in order.
template <typename... Args>
[[nodiscard]] std::string format(std::string_view fmt, Args&&... args) {
  std::string out;
  out.reserve(fmt.size() + sizeof...(args) * 8);
  detail::format_impl(out, fmt, std::forward<Args>(args)...);
  return out;
}

/// Fixed-precision floating point rendering ("%.*f").
[[nodiscard]] inline std::string fixed(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

/// Left-justifies `text` into a field of at least `width` characters.
[[nodiscard]] inline std::string pad_right(std::string text,
                                           std::size_t width) {
  if (text.size() < width) text.append(width - text.size(), ' ');
  return text;
}

}  // namespace idde::util
