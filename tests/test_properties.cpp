// Cross-module property tests: physical bounds, monotonicity and
// consistency invariants checked over randomised instances (TEST_P sweeps).
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "baselines/allocators.hpp"
#include "core/delivery.hpp"
#include "core/game.hpp"
#include "core/greedy_delivery.hpp"
#include "core/idde_g.hpp"
#include "core/metrics.hpp"
#include "model/instance_builder.hpp"
#include "sim/paper.hpp"

namespace {

using namespace idde;

model::InstanceParams sized(std::size_t n, std::size_t m, std::size_t k) {
  model::InstanceParams p = sim::paper_default_params();
  p.server_count = n;
  p.user_count = m;
  p.data_count = k;
  return p;
}

class SeededPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededPropertyTest, MetricsRespectPhysicalBounds) {
  const auto inst = model::make_instance(sized(12, 60, 4), GetParam());
  util::Rng rng(GetParam());
  for (const auto& approach : sim::make_paper_approaches(10.0)) {
    const auto strategy = approach->solve(inst, rng);
    const auto metrics = core::evaluate(inst, strategy);
    // Rates can never exceed the largest per-user cap.
    double max_cap = 0.0;
    for (const auto& u : inst.users()) {
      max_cap = std::max(max_cap, u.max_rate_mbps);
    }
    EXPECT_GE(metrics.avg_rate_mbps, 0.0);
    EXPECT_LE(metrics.avg_rate_mbps, max_cap + 1e-9);
    // Latency can never exceed the worst cloud fetch.
    double max_cloud_ms = 0.0;
    for (const auto& d : inst.data_items()) {
      max_cloud_ms = std::max(
          max_cloud_ms, inst.latency().cloud_transfer_seconds(d.size_mb)) ;
    }
    max_cloud_ms *= 1e3;
    EXPECT_GE(metrics.avg_latency_ms, 0.0);
    EXPECT_LE(metrics.avg_latency_ms, max_cloud_ms + 1e-9);
  }
}

TEST_P(SeededPropertyTest, EquilibriumBeatsRandomAllocationOnBenefit) {
  const auto inst = model::make_instance(sized(10, 50, 3), GetParam());
  const auto equilibrium = core::IddeUGame(inst).run();
  util::Rng rng(GetParam() * 3 + 1);
  const auto random = baselines::random_allocation(inst, rng);
  // Compare the sum of the game's own objective (Eq. 12 benefits).
  const auto total_benefit = [&](const core::AllocationProfile& alloc) {
    radio::InterferenceField field(inst.radio_env());
    for (std::size_t j = 0; j < alloc.size(); ++j) {
      if (alloc[j].allocated()) field.add_user(j, alloc[j]);
    }
    double total = 0.0;
    for (std::size_t j = 0; j < alloc.size(); ++j) {
      if (alloc[j].allocated()) total += field.benefit(j, alloc[j]);
    }
    return total;
  };
  EXPECT_GE(total_benefit(equilibrium.allocation),
            total_benefit(random) * 0.99);
}

TEST_P(SeededPropertyTest, MoreStorageNeverHurtsGreedyLatency) {
  model::InstanceParams small = sized(8, 40, 4);
  small.min_storage_mb = 30.0;
  small.max_storage_mb = 60.0;
  model::InstanceParams large = small;
  large.min_storage_mb = 200.0;
  large.max_storage_mb = 300.0;
  // Same seed => identical layout/users/requests; only storage differs.
  const auto inst_small = model::make_instance(small, GetParam());
  const auto inst_large = model::make_instance(large, GetParam());
  const auto alloc_small = core::IddeUGame(inst_small).run().allocation;
  const auto alloc_large = core::IddeUGame(inst_large).run().allocation;
  const auto plan_small =
      core::GreedyDeliveryPlanner(inst_small).plan(alloc_small);
  const auto plan_large =
      core::GreedyDeliveryPlanner(inst_large).plan(alloc_large);
  EXPECT_LE(core::average_latency_ms(inst_large, alloc_large,
                                     plan_large.delivery),
            core::average_latency_ms(inst_small, alloc_small,
                                     plan_small.delivery) +
                1e-6);
}

TEST_P(SeededPropertyTest, EvaluatorTotalsMatchFromScratchRecompute) {
  const auto inst = model::make_instance(sized(9, 45, 4), GetParam());
  const auto alloc = core::IddeUGame(inst).run().allocation;
  const auto plan = core::GreedyDeliveryPlanner(inst).plan(alloc);
  // Incremental total (inside the planner) vs a fresh evaluation.
  core::DeliveryEvaluator fresh(inst, alloc);
  for (std::size_t k = 0; k < inst.data_count(); ++k) {
    for (const std::size_t i : plan.delivery.hosts(k)) fresh.commit(i, k);
  }
  EXPECT_NEAR(fresh.total_latency_seconds(),
              core::total_latency_seconds(inst, alloc, plan.delivery), 1e-9);
}

TEST_P(SeededPropertyTest, RemovingAUserNeverLowersOthersRates) {
  const auto inst = model::make_instance(sized(8, 30, 3), GetParam());
  auto alloc = core::IddeUGame(inst).run().allocation;
  const auto before = core::user_rates(inst, alloc);
  // Remove the first allocated user.
  std::size_t removed = inst.user_count();
  for (std::size_t j = 0; j < alloc.size(); ++j) {
    if (alloc[j].allocated()) {
      alloc[j] = core::kUnallocated;
      removed = j;
      break;
    }
  }
  ASSERT_LT(removed, inst.user_count());
  const auto after = core::user_rates(inst, alloc);
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    if (j == removed) continue;
    EXPECT_GE(after[j], before[j] - 1e-9) << "user " << j;
  }
}

TEST_P(SeededPropertyTest, ShadowingZeroMatchesDeterministicModel) {
  model::InstanceParams plain = sized(8, 30, 3);
  model::InstanceParams shadow0 = plain;
  shadow0.shadowing_stddev_db = 0.0;
  const auto a = model::make_instance(plain, GetParam());
  const auto b = model::make_instance(shadow0, GetParam());
  EXPECT_EQ(a.radio_env().gain, b.radio_env().gain);
}

TEST_P(SeededPropertyTest, ShadowingPerturbsGainsDeterministically) {
  model::InstanceParams shadowed = sized(8, 30, 3);
  shadowed.shadowing_stddev_db = 6.0;
  const auto a = model::make_instance(shadowed, GetParam());
  const auto b = model::make_instance(shadowed, GetParam());
  EXPECT_EQ(a.radio_env().gain, b.radio_env().gain);  // same seed
  model::InstanceParams plain = sized(8, 30, 3);
  const auto c = model::make_instance(plain, GetParam());
  EXPECT_NE(a.radio_env().gain, c.radio_env().gain);  // shadowing acts
  // Gains stay positive.
  for (const double g : a.radio_env().gain) EXPECT_GT(g, 0.0);
}

TEST_P(SeededPropertyTest, CloudSpeedScalesCloudOnlyLatency) {
  model::InstanceParams slow = sized(8, 30, 3);
  slow.cloud_speed_mbps = 300.0;
  model::InstanceParams fast = slow;
  fast.cloud_speed_mbps = 600.0;
  const auto a = model::make_instance(slow, GetParam());
  const auto b = model::make_instance(fast, GetParam());
  const core::AllocationProfile none_a(a.user_count(), core::kUnallocated);
  const core::DeliveryProfile empty_a(a);
  const core::DeliveryProfile empty_b(b);
  const double la = core::average_latency_ms(a, none_a, empty_a);
  const double lb = core::average_latency_ms(b, none_a, empty_b);
  EXPECT_NEAR(la, 2.0 * lb, 1e-6);  // half the speed, twice the latency
}

// Satellite of the coded-placement PR: the integer-KB ledger makes
// place/remove replay exact. Over 1000 random placement/removal
// sequences, the live profile's headroom must equal a profile recomputed
// from the surviving placements alone (restore(), shuffled order) — no
// float drift, no order dependence.
TEST(DeliveryLedger, ReplayEqualsRecomputeOverRandomSequences) {
  const auto inst = model::make_instance(sized(8, 30, 5), 4242);
  util::Rng rng(0x1ed6e2ULL);
  for (int sequence = 0; sequence < 1000; ++sequence) {
    core::DeliveryProfile live(inst);
    std::vector<std::pair<std::size_t, std::size_t>> placements;
    const std::size_t steps = 1 + rng.index(60);
    for (std::size_t step = 0; step < steps; ++step) {
      const std::size_t i = rng.index(inst.server_count());
      const std::size_t k = rng.index(inst.data_count());
      if (live.placed(i, k) && rng.index(3) == 0) {
        live.remove(i, k);
        placements.erase(
            std::find(placements.begin(), placements.end(),
                      std::make_pair(i, k)));
      } else if (live.can_place(i, k)) {
        live.place(i, k);
        placements.emplace_back(i, k);
      }
    }
    // Shuffle the surviving placements: replay order must not matter.
    for (std::size_t i = placements.size(); i > 1; --i) {
      std::swap(placements[i - 1], placements[rng.index(i)]);
    }
    std::vector<double> free_mb(inst.server_count());
    for (std::size_t i = 0; i < inst.server_count(); ++i) {
      free_mb[i] = live.free_mb(i);
    }
    const auto recomputed =
        core::DeliveryProfile::restore(inst, placements, free_mb);
    ASSERT_EQ(recomputed.placement_count(), live.placement_count());
    for (std::size_t i = 0; i < inst.server_count(); ++i) {
      ASSERT_EQ(recomputed.free_kb(i), live.free_kb(i))
          << "sequence " << sequence << " server " << i;
    }
    for (std::size_t k = 0; k < inst.data_count(); ++k) {
      const auto a = recomputed.hosts(k);
      const auto b = live.hosts(k);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Range<std::uint64_t>(9000, 9008));

TEST(EdgeCases, SingleUserSingleServer) {
  model::InstanceParams p = sized(1, 1, 1);
  const auto inst = model::make_instance(p, 1);
  util::Rng rng(1);
  const auto strategy = core::IddeG().solve(inst, rng);
  const auto metrics = core::evaluate(inst, strategy);
  if (!inst.covering_servers(0).empty()) {
    EXPECT_EQ(metrics.allocated_users, 1u);
    EXPECT_NEAR(metrics.avg_rate_mbps, inst.user(0).max_rate_mbps, 1e-6);
  }
}

TEST(EdgeCases, SingleDataItem) {
  const auto inst = model::make_instance(sized(6, 20, 1), 2);
  util::Rng rng(2);
  const auto strategy = core::IddeG().solve(inst, rng);
  EXPECT_GT(strategy.placements, 0u);
}

TEST(EdgeCases, TinyStorageStillFeasible) {
  model::InstanceParams p = sized(6, 20, 3);
  p.min_storage_mb = 1.0;
  p.max_storage_mb = 5.0;  // nothing fits (items are >= 30 MB)
  const auto inst = model::make_instance(p, 3);
  util::Rng rng(3);
  const auto strategy = core::IddeG().solve(inst, rng);
  EXPECT_EQ(strategy.placements, 0u);
  const auto metrics = core::evaluate(inst, strategy);
  // Everything comes from the cloud.
  core::DeliveryEvaluator cloud(inst, strategy.allocation);
  EXPECT_NEAR(metrics.avg_latency_ms,
              cloud.average_latency_seconds() * 1e3, 1e-9);
}

TEST(EdgeCases, ManyChannelsEliminateInCellInterference) {
  model::InstanceParams few = sized(6, 40, 3);
  few.channels_per_server = 1;
  model::InstanceParams many = sized(6, 40, 3);
  many.channels_per_server = 12;
  double rate_few = 0.0;
  double rate_many = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto a = model::make_instance(few, 40 + seed);
    const auto b = model::make_instance(many, 40 + seed);
    rate_few += core::average_data_rate_mbps(a, core::IddeUGame(a).run().allocation);
    rate_many +=
        core::average_data_rate_mbps(b, core::IddeUGame(b).run().allocation);
  }
  EXPECT_GT(rate_many, rate_few);
}

}  // namespace
