// CodedDeliveryEvaluator: incremental evaluation of total delivery
// latency under a fixed allocation when items are (n, k) erasure-coded.
// The coded planner asks "how much latency would one more fragment of d_k
// on v_i remove?" thousands of times; each request caches its current
// coded Eq. 8 latency and a candidate is scored by re-running the small
// per-request kernel over the item's hosts plus the candidate.
//
// Unlike core::DeliveryEvaluator, adding a fragment does not reduce each
// request to a single min update (the k-th-fastest leg shifts), so the
// evaluator tracks the per-item host sets itself in a flat K x N arena.
// At k = 1 the kernel degenerates to min(cached, new leg): gains, commit
// effects and the running total are bit-identical to
// core::DeliveryEvaluator in the same request order.
#pragma once

#include <cstddef>
#include <vector>

#include "coding/coded_profile.hpp"
#include "coding/fragment.hpp"
#include "core/strategy.hpp"
#include "model/instance.hpp"

namespace idde::coding {

class CodedDeliveryEvaluator {
 public:
  /// Snapshots the allocation (only each user's serving server matters).
  /// All requests start at the whole-item cloud latency — the empty
  /// coded sigma. With `collaborative` false, fragments only help users
  /// allocated to their own host server.
  CodedDeliveryEvaluator(const model::ProblemInstance& instance,
                         const core::AllocationProfile& allocation,
                         FragmentConfig config, bool collaborative = true);

  /// Rewinds to the empty sigma under a (possibly different) allocation,
  /// reusing every buffer — no allocation happens here.
  void reset(const core::AllocationProfile& allocation,
             bool collaborative = true);

  [[nodiscard]] const FragmentConfig& config() const noexcept {
    return config_;
  }

  /// Total latency reduction (seconds) of adding one fragment of d_k on
  /// v_i, given all fragments committed so far. Never negative.
  [[nodiscard]] double gain_seconds(std::size_t server,
                                    std::size_t item) const;

  /// Commits the fragment: permanently lowers the affected requests'
  /// cached latencies. Returns the realised gain (== gain_seconds
  /// beforehand).
  double commit(std::size_t server, std::size_t item);

  [[nodiscard]] double total_latency_seconds() const noexcept {
    return total_latency_;
  }

  /// L_ave (Eq. 9) under coded delivery, seconds.
  [[nodiscard]] double average_latency_seconds() const;

  [[nodiscard]] std::size_t request_count() const noexcept {
    return request_user_.size();
  }

  /// Current coded Eq. 8 latency of one request, seconds. Requests are
  /// numbered user-major in `requests().items_of(j)` order — the same
  /// numbering core::DeliveryEvaluator uses.
  [[nodiscard]] double request_latency_seconds(std::size_t id) const {
    return request_latency_[id];
  }

 private:
  /// Coded Eq. 8 for one request: hosts = the item's committed hosts
  /// plus (optionally) `extra_host` (kNoExtra = none). Uses the mutable
  /// legs scratch; single-threaded like every evaluator in the repo.
  static constexpr std::size_t kNoExtra = static_cast<std::size_t>(-1);
  [[nodiscard]] double request_seconds(std::size_t id,
                                       std::size_t extra_host) const;

  const model::ProblemInstance* instance_;
  FragmentConfig config_;
  bool collaborative_;
  std::size_t data_count_;
  std::vector<std::size_t> serving_server_;
  // Flat request arrays (SoA), ids user-major, with a CSR index per item
  // — the same layout core::DeliveryEvaluator uses, so per-item gain
  // accumulation visits requests in the identical order.
  std::vector<std::size_t> request_user_;
  std::vector<std::size_t> request_item_;
  std::vector<double> request_latency_;  ///< current coded Eq. 8 value
  std::vector<std::size_t> request_serving_;
  std::vector<std::size_t> item_req_ids_;
  std::vector<std::size_t> item_req_offset_;
  /// Committed fragment hosts per item (ascending ids), flat K x N arena.
  std::vector<std::size_t> hosts_flat_;
  std::vector<std::size_t> host_count_;
  std::vector<double> frag_mb_;          ///< per item fragment size
  mutable std::vector<double> legs_;     ///< per-request kernel scratch
  double total_latency_ = 0.0;
};

/// Convenience: total coded latency of a complete coded strategy from
/// scratch. At k = 1 equals core::total_latency_seconds bitwise.
[[nodiscard]] double coded_total_latency_seconds(
    const model::ProblemInstance& instance,
    const core::AllocationProfile& allocation,
    const CodedDeliveryProfile& delivery, bool collaborative = true);

}  // namespace idde::coding
