file(REMOVE_RECURSE
  "CMakeFiles/ablation_propagation.dir/bench/ablation_propagation.cpp.o"
  "CMakeFiles/ablation_propagation.dir/bench/ablation_propagation.cpp.o.d"
  "bench/ablation_propagation"
  "bench/ablation_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
