#include "dynamic/churn.hpp"

#include <cmath>
#include <utility>

#include "util/assert.hpp"

namespace idde::dynamic {

ChurnProcess::ChurnProcess(std::size_t user_count, ChurnParams params,
                           util::Rng& rng)
    : online_(user_count, false), params_(params) {
  IDDE_EXPECTS(params.arrival_rate_hz >= 0.0);
  IDDE_EXPECTS(params.initial_online_fraction >= 0.0 &&
               params.initial_online_fraction <= 1.0);
  for (std::size_t j = 0; j < user_count; ++j) {
    if (rng.bernoulli(params.initial_online_fraction)) {
      online_[j] = true;
      ++count_;
    }
  }
}

void ChurnProcess::restore_mask(std::vector<bool> online) {
  IDDE_EXPECTS(online.size() == online_.size());
  online_ = std::move(online);
  count_ = 0;
  for (std::size_t j = 0; j < online_.size(); ++j) {
    if (online_[j]) ++count_;
  }
}

std::size_t ChurnProcess::step(double dt_seconds, util::Rng& rng) {
  IDDE_EXPECTS(dt_seconds >= 0.0);
  // Exact per-step toggle probabilities for an exponential clock.
  const double p_arrive =
      params_.arrival_rate_hz > 0.0
          ? 1.0 - std::exp(-params_.arrival_rate_hz * dt_seconds)
          : 0.0;
  const double p_depart =
      params_.mean_session_s > 0.0
          ? 1.0 - std::exp(-dt_seconds / params_.mean_session_s)
          : 0.0;
  std::size_t toggled = 0;
  for (std::size_t j = 0; j < online_.size(); ++j) {
    if (online_[j]) {
      if (rng.bernoulli(p_depart)) {
        online_[j] = false;
        --count_;
        ++toggled;
      }
    } else if (rng.bernoulli(p_arrive)) {
      online_[j] = true;
      ++count_;
      ++toggled;
    }
  }
  return toggled;
}

}  // namespace idde::dynamic
