// Streaming and batch statistics used by the experiment harness to aggregate
// repeated runs (the paper reports means over 50 repetitions per point).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace idde::util {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Point estimate with a symmetric confidence half-width.
struct Estimate {
  double mean = 0.0;
  double half_width = 0.0;  ///< ~95% CI half-width (normal approximation)
  std::size_t n = 0;
};

/// Summarises samples into mean ± 95% CI.
[[nodiscard]] Estimate summarize(std::span<const double> samples);
[[nodiscard]] Estimate summarize(const RunningStats& stats);

/// Percentile by linear interpolation on a copy of the data; p in [0, 100].
[[nodiscard]] double percentile(std::span<const double> samples, double p);

[[nodiscard]] double mean_of(std::span<const double> samples);

/// Relative improvement of `ours` over `other`: (other - ours)/other for
/// lower-is-better metrics; used when reporting the paper's "% advantage".
[[nodiscard]] double relative_reduction(double ours, double other);
/// (ours - other)/other for higher-is-better metrics.
[[nodiscard]] double relative_gain(double ours, double other);

}  // namespace idde::util
