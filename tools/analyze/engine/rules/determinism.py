"""Determinism pack: keep the bit-identical-replay guarantees provable.

Every correctness story in this repo (scalar-vs-batched oracles, inert-plan
identity, thread-count invariance) rests on runs being bit-identical given
a seed. These rules ban the constructs that silently break that:

  unordered-container  std::unordered_{map,set,...} in src/: iteration
                       order is hash-seed- and libc++-dependent, and any
                       float accumulated in such an order diverges across
                       toolchains. src/ is currently clean; stays that way.
  pointer-key-order    std::map/std::set keyed on a pointer type: the
                       traversal order is the allocator's address order,
                       different every run under ASLR.
  par-stl              std::reduce / std::execution::par: unordered
                       reduction trees, nondeterministic for floats by
                       specification.
  par-float-accum      `x += ...` / `stats.add(...)` inside a parallel_for
                       body on state declared outside the body: the commit
                       order depends on thread scheduling, so float
                       accumulation diverges run-to-run even under a lock.
                       Stage per-index results into disjoint slots and fold
                       serially after the join, or document the ordered
                       reduction with an `ordered-reduction: ...` comment.
"""

from __future__ import annotations

import re

from ..config import Config
from ..findings import Finding
from ..source import SourceFile

RULES = {
    "unordered-container": (
        "std::unordered_* in src/: hash-order iteration breaks "
        "bit-identical replay; use std::map/std::set or a sorted vector"),
    "pointer-key-order": (
        "std::map/std::set keyed on a pointer: address order is "
        "nondeterministic under ASLR; key on a stable id instead"),
    "par-stl": (
        "std::reduce/std::execution::par reduce in a nondeterministic "
        "order; use a serial fold or an ordered tree"),
    "par-float-accum": (
        "accumulation inside a parallel_for body on state declared outside "
        "it: commit order is scheduler-dependent; stage per-index results "
        "and fold after the join (or add `ordered-reduction: ...`)"),
}

UNORDERED = re.compile(
    r"\bstd::(unordered_(?:multi)?(?:map|set))\b")
# First template argument ends in `*` (cv/spacing tolerated).
POINTER_KEY = re.compile(
    r"\bstd::((?:multi)?(?:map|set))\s*<\s*(?:[\w:]+\s*)+\*\s*[,>]")
PAR_STL = re.compile(r"\bstd::(reduce|execution::par(?:_unseq)?)\b")
PARALLEL_CALL = re.compile(r"\bparallel_for(?:_lanes)?\s*\(")
ACCUM = re.compile(
    r"(?P<recv>[A-Za-z_]\w*(?:(?:\.|->)\w+|\[[^]]*\])*)\s*"
    r"(?:\+=|-=|\*=|/=|\.\s*(?:add|record)\s*\()")


def call_span(code: str, open_paren: int) -> int:
    """Offset one past the `)` matching the `(` at open_paren."""
    depth = 0
    for pos in range(open_paren, len(code)):
        if code[pos] == "(":
            depth += 1
        elif code[pos] == ")":
            depth -= 1
            if depth == 0:
                return pos + 1
    return len(code)


def scan(sf: SourceFile, cfg: Config):
    findings: list[Finding] = []
    suppressed = 0
    in_scope = cfg.in_scope(sf.rel, cfg.determinism_scope)
    if not in_scope:
        return findings, {"suppressed": 0}

    def report(line: int, rule: str, key: str, message: str) -> None:
        nonlocal suppressed
        if sf.allowed(line, rule):
            suppressed += 1
        else:
            findings.append(Finding(sf.rel, line, rule, key, message))

    for match in UNORDERED.finditer(sf.code):
        report(sf.line_of(match.start()), "unordered-container",
               f"std::{match.group(1)}", RULES["unordered-container"])
    for match in POINTER_KEY.finditer(sf.code):
        report(sf.line_of(match.start()), "pointer-key-order",
               f"std::{match.group(1)}<T*>", RULES["pointer-key-order"])
    for match in PAR_STL.finditer(sf.code):
        report(sf.line_of(match.start()), "par-stl",
               f"std::{match.group(1)}", RULES["par-stl"])

    for match in PARALLEL_CALL.finditer(sf.code):
        body_start = match.end() - 1
        body_end = call_span(sf.code, body_start)
        body = sf.code[body_start:body_end]
        for acc in ACCUM.finditer(body):
            recv = acc.group("recv")
            base = re.match(r"[A-Za-z_]\w*", recv).group(0)
            # State declared inside the body is thread-private: a
            # `<type> base` declaration within the span exempts it.
            if re.search(r"[\w>&\*]\s+" + re.escape(base) + r"\s*[={;,)]",
                         body[:acc.start()]):
                continue
            line = sf.line_of(body_start + acc.start())
            if sf.tag_nearby(line, "ordered-reduction:"):
                continue
            report(line, "par-float-accum", f"accum:{recv}",
                   f"`{recv}` accumulated inside a parallel_for body but "
                   "declared outside it: commit order is scheduler-"
                   "dependent; stage per-index results into disjoint slots "
                   "and fold after the join (or justify with "
                   "`ordered-reduction: ...`)")
    return findings, {"suppressed": suppressed}
