// Depth-first branch-and-bound over the binary placement variables
// sigma_{i,k}, given a fixed user allocation. Decisions are branched in
// *model order* (sigma_{1,1}, sigma_{1,2}, ..., sigma_{N,K}), with the
// "place" branch tried first — mirroring an untuned CP/ILP model of
// Section 2.3, where the solver's first incumbents come from diving on the
// variable order. An admissible upper bound on the achievable latency
// reduction prunes the tree, so given enough time the search is exact; with
// a deadline it is an anytime solver that returns the best incumbent.
#pragma once

#include "core/delivery.hpp"
#include "core/strategy.hpp"
#include "model/instance.hpp"
#include "util/timer.hpp"

namespace idde::solver {

struct PlacementSearchResult {
  core::DeliveryProfile delivery;
  double total_latency_seconds = 0.0;
  std::size_t nodes_explored = 0;
  bool proven_optimal = false;  ///< tree exhausted before the deadline
};

[[nodiscard]] PlacementSearchResult placement_branch_and_bound(
    const model::ProblemInstance& instance,
    const core::AllocationProfile& allocation, const util::Deadline& deadline);

}  // namespace idde::solver
