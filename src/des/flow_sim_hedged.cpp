// The gray-failure DES engine: degradation-scaled fluid rates, a per-leg
// loss lottery, health-aware source selection and hedged backup legs.
//
// Structure mirrors run_with_faults (flow_sim.cpp): records are created
// user-major with the same rng arrival draws, attempts sit in a
// deterministic (time, record) min-heap, and epoch boundaries of an
// optional binary FaultPlan abort in-flight legs exactly as before. On
// top of that:
//
//   gray slowness   a leg from server i launched at time t drains at
//                   rate / multiplier(i, t). The multiplier is sampled at
//                   launch (transfers are short relative to gray ramps)
//                   and the leg still occupies its full max-min share of
//                   every link — a deliberately conservative model: a slow
//                   *server* does not free up the *network*.
//   gray loss       each leg draws a stateless loss lottery at launch; a
//                   lost leg transfers fully, then fails its integrity
//                   check — bytes burned, no delivery (checksum model).
//   health          genuine completions and losses feed a HealthTracker;
//                   with hedge.health_aware, new legs resolve through
//                   core::resolve_with_health (gray sources demoted) and
//                   a source's hedge deadline shrinks with its score.
//   hedging         a routed leg passing its deadline launches one backup
//                   leg from the best source not already in flight (or
//                   the cloud). First genuine completion wins; the losers
//                   are cancelled and their bytes charged to
//                   hedge_wasted_mb. Cloud legs and local hits never lose.
//
// Determinism: single-threaded, no wall clock; every tie-break is on
// (time, record id) or (time, leg id) where leg ids are assigned in
// deterministic launch order.
#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <span>

#include "des/flow_sim.hpp"
#include "des/fluid.hpp"
#include "fault/injector.hpp"
#include "net/shortest_path.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace idde::des {

using detail::assign_max_min_rates;

namespace {

/// One in-flight routed leg. Extends detail::ActiveFlow's shape (the
/// water-filling template only needs `links` + `rate_mbps`).
struct HedgedLeg {
  std::size_t record_index = 0;
  double remaining_mb = 0.0;
  std::vector<std::size_t> links;
  double rate_mbps = 0.0;
  // Hedged extras.
  std::size_t leg_id = 0;
  std::size_t source = 0;
  double start_s = 0.0;
  double expected_s = 0.0;  ///< unweighted resolver seconds at launch
  double rate_scale = 1.0;  ///< 1 / gray latency multiplier at launch
  double size_mb = 0.0;
  bool lost = false;  ///< drawn at launch, detected at transfer end
  bool is_hedge = false;
  core::FallbackTier tier = core::FallbackTier::kPrimary;
};

/// One in-flight cloud leg (uncontended, reliable, not hedgeable-against
/// by loss — but it can lose the race to an edge leg).
struct CloudLeg {
  std::size_t record_index = 0;
  std::size_t leg_id = 0;
  double start_s = 0.0;
  double completion_s = 0.0;
  bool is_hedge = false;
  bool alive = true;
  core::FallbackTier tier = core::FallbackTier::kCloud;
  bool forced = false;
};

struct TimedEvent {
  double time;
  std::size_t id;  ///< record for attempts, leg for deadlines
};
struct EventLater {
  bool operator()(const TimedEvent& x, const TimedEvent& y) const {
    if (x.time != y.time) return x.time > y.time;
    return x.id > y.id;
  }
};
using EventQueue =
    std::priority_queue<TimedEvent, std::vector<TimedEvent>, EventLater>;

}  // namespace

FlowSimResult FlowLevelSimulator::run_hedged(const core::Strategy& strategy,
                                             util::Rng& rng) const {
  IDDE_OBS_SPAN("des.run_hedged");
  const model::ProblemInstance& instance = *instance_;
  IDDE_EXPECTS(strategy.allocation.size() == instance.user_count());
  IDDE_EXPECTS(options_.hedge.deadline_factor > 0.0);
  IDDE_EXPECTS(options_.hedge.min_deadline_s >= 0.0);

  const fault::DegradationPlan* gray =
      options_.degradation != nullptr && !options_.degradation->inert()
          ? options_.degradation
          : nullptr;
  const fault::FaultPlan* fplan =
      options_.fault_plan != nullptr && !options_.fault_plan->inert()
          ? options_.fault_plan
          : nullptr;
  const bool corruption =
      fplan != nullptr && fplan->replica_corruption_prob() > 0.0;
  const HedgeConfig& hedge = options_.hedge;

  std::optional<fault::FaultInjector> injector;
  if (fplan != nullptr) injector.emplace(instance, *fplan);

  core::HealthTracker health(instance.server_count(), hedge.health);
  const core::HealthTracker* health_view =
      hedge.health_aware ? &health : nullptr;

  FlowSimResult result;
  // Same user-major record order and rng arrival draws as every other
  // engine, so arrival times are comparable run to run.
  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    for (const std::size_t k : instance.requests().items_of(j)) {
      FlowRecord record;
      record.user = j;
      record.item = k;
      record.arrival_s = options_.arrival_window_s > 0.0
                             ? rng.uniform(0.0, options_.arrival_window_s)
                             : 0.0;
      result.flows.push_back(record);
    }
  }

  std::vector<double> capacities;
  capacities.reserve(links_.size());
  for (const Link& link : links_) capacities.push_back(link.capacity_mbps);

  EventQueue attempts;   // id = record index
  EventQueue deadlines;  // id = leg id (lazily invalidated)
  for (std::size_t r = 0; r < result.flows.size(); ++r) {
    attempts.push(TimedEvent{result.flows[r].arrival_s, r});
  }

  std::vector<HedgedLeg> active;     // routed legs (water-filled)
  std::vector<CloudLeg> cloud_legs;  // compacted when all retire
  const std::size_t record_count = result.flows.size();
  std::vector<std::uint8_t> done(record_count, 0);
  std::vector<std::size_t> legs_alive(record_count, 0);
  std::vector<std::size_t> hedges_launched(record_count, 0);
  std::vector<std::size_t> leg_seq(record_count, 0);  // loss-lottery index
  std::size_t next_leg_id = 0;
  std::size_t cloud_alive = 0;

  std::vector<std::size_t> degraded_hosts;
  std::vector<std::size_t> reference_hosts;
  std::vector<std::uint8_t> up_buf;

  // --- leg bookkeeping -----------------------------------------------

  // Cancels every other leg racing for `r` after a genuine completion:
  // race losers burn their transferred bytes.
  const auto cancel_siblings = [&](std::size_t r, std::size_t winner_leg,
                                   double now) {
    for (std::size_t f = 0; f < active.size();) {
      if (active[f].record_index != r || active[f].leg_id == winner_leg) {
        ++f;
        continue;
      }
      ++result.hedge_cancelled;
      result.hedge_wasted_mb += active[f].size_mb - active[f].remaining_mb;
      --legs_alive[r];
      active[f] = active.back();
      active.pop_back();
    }
    for (CloudLeg& leg : cloud_legs) {
      if (!leg.alive || leg.record_index != r || leg.leg_id == winner_leg) {
        continue;
      }
      ++result.hedge_cancelled;
      // Cloud legs are uncontended: bytes transfer pro rata over the leg.
      const double duration = leg.completion_s - leg.start_s;
      const double elapsed = now - leg.start_s;
      const double size = instance.data(result.flows[r].item).size_mb;
      if (duration > 0.0) {
        result.hedge_wasted_mb +=
            size * std::clamp(elapsed / duration, 0.0, 1.0);
      }
      leg.alive = false;
      --cloud_alive;
      --legs_alive[r];
    }
  };

  // A genuine completion: first one wins the record.
  const auto complete = [&](std::size_t r, std::size_t leg_id, double now,
                            core::FallbackTier tier, bool from_cloud,
                            bool local_hit, bool is_hedge, bool forced,
                            std::size_t hops) {
    FlowRecord& record = result.flows[r];
    done[r] = 1;
    record.completion_s = now;
    record.tier = tier;
    record.from_cloud = from_cloud;
    record.local_hit = local_hit;
    record.forced_cloud = forced;
    record.hops = hops;
    if (is_hedge) {
      record.hedge_won = true;
      ++result.hedge_wins;
    }
    cancel_siblings(r, leg_id, now);
  };

  // Retries `r` with capped exponential backoff (only reached when the
  // record has no other leg racing).
  const auto retry = [&](std::size_t r, double now) {
    FlowRecord& record = result.flows[r];
    ++record.retries;
    const double backoff =
        std::min(options_.retry_backoff_s *
                     std::ldexp(1.0, static_cast<int>(record.retries) - 1),
                 options_.retry_backoff_max_s);
    attempts.push(TimedEvent{now + backoff, r});
  };

  // --- leg launch ----------------------------------------------------

  // Launches one leg for `r` at `now`. `exclude` masks sources already in
  // flight for this record (hedge launches only). Returns false when the
  // request completed instantly (local hit).
  const auto launch_leg = [&](std::size_t r, double now, bool is_hedge,
                              const std::vector<std::size_t>& exclude) {
    FlowRecord& record = result.flows[r];
    const core::ChannelSlot slot = strategy.allocation[record.user];
    const std::size_t serving =
        slot.allocated() ? slot.server : core::ChannelSlot::kNone;
    const double size = instance.data(record.item).size_mb;
    const double cloud_seconds =
        instance.latency().cloud_transfer_seconds(size);

    const bool timed_out = record.retries > options_.max_retries ||
                           now - record.arrival_s > options_.timeout_s;
    if (timed_out && !is_hedge) {
      // Give up on the edge: one final, unabortable cloud transfer.
      CloudLeg leg;
      leg.record_index = r;
      leg.leg_id = next_leg_id++;
      leg.start_s = now;
      leg.completion_s = fplan != nullptr
                             ? fplan->cloud_completion(now, cloud_seconds)
                             : now + cloud_seconds;
      leg.is_hedge = false;
      leg.tier = core::FallbackTier::kCloud;
      leg.forced = true;
      cloud_legs.push_back(leg);
      ++cloud_alive;
      ++legs_alive[r];
      return;
    }

    const fault::AvailabilitySnapshot* snap =
        injector ? &injector->snapshot_at(now) : nullptr;
    degraded_hosts.clear();
    reference_hosts.clear();
    for (const std::size_t host : strategy.delivery.hosts(record.item)) {
      if (!strategy.collaborative_delivery && host != serving) continue;
      reference_hosts.push_back(host);
      if (corruption && fplan->replica_corrupted(host, record.item)) continue;
      if (std::find(exclude.begin(), exclude.end(), host) != exclude.end()) {
        continue;  // a leg from this source is already racing
      }
      degraded_hosts.push_back(host);
    }
    const std::span<const std::uint8_t> up =
        snap != nullptr ? std::span<const std::uint8_t>(snap->server_up)
                        : std::span<const std::uint8_t>{};
    const net::CostMatrix* costs = snap != nullptr ? &snap->costs : nullptr;
    const core::FailoverDecision decision = core::resolve_with_health(
        instance, degraded_hosts, serving, size, health_view, up, costs,
        reference_hosts);

    if (decision.source == core::kCloudSource) {
      CloudLeg leg;
      leg.record_index = r;
      leg.leg_id = next_leg_id++;
      leg.start_s = now;
      leg.completion_s =
          fplan != nullptr ? fplan->cloud_completion(now, decision.seconds)
                           : now + decision.seconds;
      leg.is_hedge = is_hedge;
      leg.tier = decision.tier;
      cloud_legs.push_back(leg);
      ++cloud_alive;
      ++legs_alive[r];
      return;
    }
    if (decision.source == serving) {
      // Local hit: instant, loss-exempt (no network leg to corrupt).
      complete(r, next_leg_id++, now, decision.tier, false, true, is_hedge,
               false, 0);
      return;
    }

    const net::Route route =
        net::shortest_route(snap != nullptr ? snap->graph : instance.graph(),
                            decision.source, serving);
    IDDE_ASSERT(!route.nodes.empty(),
                "resolver picked an unreachable replica");
    HedgedLeg leg;
    leg.record_index = r;
    leg.leg_id = next_leg_id++;
    leg.source = decision.source;
    leg.start_s = now;
    leg.expected_s = decision.seconds;
    leg.size_mb = size;
    leg.remaining_mb = size;
    leg.tier = decision.tier;
    leg.is_hedge = is_hedge;
    if (gray != nullptr) {
      const double multiplier = gray->latency_multiplier(decision.source, now);
      leg.rate_scale = 1.0 / multiplier;
      leg.lost = gray->leg_lost(decision.source, r, leg_seq[r], now);
    }
    ++leg_seq[r];
    for (std::size_t s = 0; s + 1 < route.nodes.size(); ++s) {
      const std::size_t l = link_between(route.nodes[s], route.nodes[s + 1]);
      IDDE_ASSERT(l != kNoLink, "route uses a missing link");
      leg.links.push_back(l);
    }
    if (hedge.enabled && hedges_launched[r] < hedge.max_hedges &&
        leg.expected_s > 0.0) {
      double factor = hedge.deadline_factor;
      if (hedge.health_aware) factor *= health.score(decision.source);
      const double wait = std::max(hedge.min_deadline_s,
                                   factor * leg.expected_s);
      deadlines.push(TimedEvent{now + wait, leg.leg_id});
    }
    ++legs_alive[r];
    active.push_back(std::move(leg));
  };

  const auto start_attempt = [&](std::size_t r, double now) {
    if (done[r] != 0 || legs_alive[r] > 0) return;  // a hedge already won
    launch_leg(r, now, /*is_hedge=*/false, {});
  };

  // --- main event loop -----------------------------------------------

  double now = 0.0;
  std::vector<std::size_t> exclude;
  while (!active.empty() || cloud_alive > 0 || !attempts.empty()) {
    if (active.empty() && cloud_alive == 0) {
      now = std::max(now, attempts.top().time);
    }
    while (!attempts.empty() && attempts.top().time <= now) {
      const TimedEvent e = attempts.top();
      attempts.pop();
      start_attempt(e.id, now);
    }
    if (active.empty() && cloud_alive == 0) continue;  // re-anchor `now`

    assign_max_min_rates(active, capacities);
    ++result.rate_recomputations;

    // Next event horizon: routed completion, cloud completion, attempt,
    // hedge deadline, or a binary epoch boundary.
    double dt = std::numeric_limits<double>::infinity();
    for (const HedgedLeg& leg : active) {
      IDDE_ASSERT(leg.rate_mbps > 0.0, "starved leg");
      dt = std::min(dt, leg.remaining_mb / (leg.rate_mbps * leg.rate_scale));
    }
    for (const CloudLeg& leg : cloud_legs) {
      if (leg.alive) dt = std::min(dt, leg.completion_s - now);
    }
    if (!attempts.empty()) dt = std::min(dt, attempts.top().time - now);
    if (!deadlines.empty()) dt = std::min(dt, deadlines.top().time - now);
    bool epoch_event = false;
    if (fplan != nullptr) {
      const double next_epoch = fplan->next_edge_change_after(now);
      if (next_epoch - now <= dt) {
        dt = next_epoch - now;
        epoch_event = true;
      }
    }
    dt = std::max(dt, 0.0);

    for (HedgedLeg& leg : active) {
      leg.remaining_mb -= leg.rate_mbps * leg.rate_scale * dt;
    }
    now += dt;

    // Routed-leg transfer ends: genuine completion or detected loss.
    for (std::size_t f = 0; f < active.size();) {
      HedgedLeg& leg = active[f];
      if (leg.remaining_mb > 1e-9) {
        ++f;
        continue;
      }
      const std::size_t r = leg.record_index;
      if (leg.lost) {
        // Full transfer, failed integrity check: bytes burned.
        IDDE_OBS_COUNT("des.gray_losses_total", 1);
        ++result.loss_aborts;
        ++result.flows[r].losses;
        result.hedge_wasted_mb += leg.size_mb;
        health.record_loss(leg.source);
        --legs_alive[r];
        const bool last_leg = legs_alive[r] == 0 && done[r] == 0;
        active[f] = active.back();
        active.pop_back();
        if (last_leg) retry(r, now);
        continue;
      }
      if (leg.expected_s > 0.0) {
        health.record_leg(leg.source, leg.expected_s, now - leg.start_s);
      }
      const std::size_t winner = leg.leg_id;
      const core::FallbackTier tier = leg.tier;
      const bool is_hedge = leg.is_hedge;
      const std::size_t hops = leg.links.size();
      --legs_alive[r];
      active[f] = active.back();
      active.pop_back();
      if (done[r] == 0) {
        complete(r, winner, now, tier, false, false, is_hedge, false, hops);
        // cancel_siblings swap-removes at arbitrary positions, which can
        // move an unvisited completed leg behind the cursor — restart.
        f = 0;
      }
    }

    // Cloud completions (reliable, but they can still lose the race —
    // cancel_siblings above marks them dead before they land).
    bool any_cloud_retired = false;
    for (CloudLeg& leg : cloud_legs) {
      if (!leg.alive || leg.completion_s > now) continue;
      leg.alive = false;
      --cloud_alive;
      --legs_alive[leg.record_index];
      any_cloud_retired = true;
      if (done[leg.record_index] == 0) {
        complete(leg.record_index, leg.leg_id, now, leg.tier, true, false,
                 leg.is_hedge, leg.forced, 0);
      }
    }
    if (any_cloud_retired && cloud_alive == 0) cloud_legs.clear();

    // Hedge deadlines: a still-running routed leg past its deadline
    // launches one backup leg from a source not already in flight.
    while (!deadlines.empty() && deadlines.top().time <= now) {
      const TimedEvent e = deadlines.top();
      deadlines.pop();
      const auto it = std::find_if(
          active.begin(), active.end(),
          [&](const HedgedLeg& leg) { return leg.leg_id == e.id; });
      if (it == active.end()) continue;  // leg already resolved: stale event
      const std::size_t r = it->record_index;
      if (done[r] != 0 || hedges_launched[r] >= hedge.max_hedges) continue;
      ++hedges_launched[r];
      ++result.hedge_launches;
      result.flows[r].hedged = true;
      IDDE_OBS_COUNT("des.hedge_launches_total", 1);
      exclude.clear();
      for (const HedgedLeg& leg : active) {
        if (leg.record_index == r) exclude.push_back(leg.source);
      }
      launch_leg(r, now, /*is_hedge=*/true, exclude);
    }

    if (epoch_event) {
      // Abort routed legs whose path died (same policy as
      // run_with_faults); a sole leg retries with backoff, a racing leg
      // just drops out of the race.
      for (std::size_t f = 0; f < active.size();) {
        bool dead = false;
        for (const std::size_t l : active[f].links) {
          if (!fplan->server_up(links_[l].a, now) ||
              !fplan->server_up(links_[l].b, now) ||
              !fplan->link_up(links_[l].a, links_[l].b, now)) {
            dead = true;
            break;
          }
        }
        if (!dead) {
          ++f;
          continue;
        }
        IDDE_OBS_COUNT("des.epoch_aborts_total", 1);
        const std::size_t r = active[f].record_index;
        --legs_alive[r];
        const bool had_siblings = legs_alive[r] > 0 || done[r] != 0;
        if (had_siblings) {
          ++result.hedge_cancelled;
          result.hedge_wasted_mb +=
              active[f].size_mb - active[f].remaining_mb;
        }
        active[f] = active.back();
        active.pop_back();
        if (!had_siblings) retry(r, now);
      }
    }
  }

  finalize(result);
  IDDE_OBS_COUNT("des.hedge_wins_total", result.hedge_wins);
  IDDE_OBS_COUNT("des.hedge_cancelled_total", result.hedge_cancelled);
  return result;
}

}  // namespace idde::des
