// Configuration of the online serving controller (serve::ServeController).
//
// The controller keeps an IDDE-U equilibrium and a delivery profile sigma
// continuously repaired while the world drifts under it — users walk and
// churn, servers crash and recover. Everything here is *deterministic
// budget* configuration: work is bounded in solver rounds and greedy
// placements (pure counts), never in wall-clock, so a run is a pure
// function of (config, seed) on any machine and bit-identical resume from
// a checkpoint is possible. Wall-clock appears only in bench reporting.
#pragma once

#include <cstddef>

#include "core/game.hpp"
#include "core/health.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/mobility.hpp"
#include "fault/degradation.hpp"
#include "fault/fault_plan.hpp"
#include "model/instance_builder.hpp"
#include "qos/config.hpp"

namespace idde::serve {

struct ServeConfig {
  /// Static world (servers, storage, catalogue, request matrix).
  model::InstanceParams base;
  /// Simulated seconds per tick; event times are tick * tick_seconds.
  double tick_seconds = 1.0;

  // Event sources.
  dynamic::MobilityParams mobility;
  bool churn_enabled = true;
  dynamic::ChurnParams churn;
  fault::FaultProfile faults;
  /// Gray-failure schedule (slow-not-dead servers). The controller feeds
  /// the per-tick latency multipliers into a core::HealthTracker; a
  /// server crossing the demotion threshold raises a kServerGray event
  /// with the same budgeted sigma repair a crash gets, and recovery
  /// raises kServerRecovered. Inert (the default) adds nothing: events,
  /// trajectory hash and checkpoints are bit-identical to pre-gray runs.
  fault::DegradationProfile degradation;
  /// Health-score parameters used when `degradation` is active.
  core::HealthConfig health;
  /// Every this many ticks a sigma-refresh event re-runs the budgeted
  /// delivery heal even without a fault, re-adapting sigma to the drifted
  /// geometry and churn population. 0 disables.
  std::size_t sigma_refresh_period_ticks = 0;

  /// Deterministic mass-failure injection for chaos/recovery studies: at
  /// `flash_failure_tick` the lowest-id floor(fraction * N) servers go
  /// down for `flash_failure_duration_ticks`. Applied on top of the
  /// generated fault plan; requires server_mtbf_s == 0 (the random and
  /// the injected schedules would otherwise collide). 0 = disabled.
  std::size_t flash_failure_tick = 0;
  double flash_failure_fraction = 0.0;
  std::size_t flash_failure_duration_ticks = 10;

  // Per-event repair budgets (Pillar 1). Hitting a budget leaves the
  // profile degraded-but-valid (partial best response is still a valid
  // allocation; sigma stays feasible) and enqueues a backlog continuation.
  // Best-improvement commits one move per round, so the round budget is a
  // move budget; re-equilibrating after a few ticks of mobility drift
  // takes a few hundred moves on paper-scale instances.
  std::size_t repair_rounds_per_event = 512;
  std::size_t repair_placements_per_event = 16;

  // Bounded backlog of repair continuations with deadline-aware shedding.
  std::size_t backlog_capacity = 64;
  std::size_t backlog_deadline_ticks = 20;
  std::size_t backlog_drain_per_tick = 2;
  /// Token-bucket budget for *re-enqueues* of repairs that failed again
  /// (each fresh event deposits `ratio` tokens); see qos::RetryBudget.
  qos::RetryBudgetConfig retry;

  // Convergence watchdog (Pillar 2). A non-converged repair whose applied
  // move count reaches `watchdog_suspect_moves` triggers an O(M^2)
  // potential check (core::potential); a suspect repair that *strictly
  // lowered* the potential is rolled back and counted as a strike. (The
  // heterogeneous-gain game is not an exact potential game, so honest
  // budget-capped repairs occasionally leave the potential flat — only
  // outright descent is treated as cycling.) `watchdog_strike_limit`
  // strikes trip the breaker: the last-known-good profile is restored
  // (sanitised against the live world) and repairs pause for
  // `watchdog_cooldown_ticks`, then re-open one probe at a time.
  std::size_t watchdog_suspect_moves = 384;
  std::size_t watchdog_strike_limit = 3;
  std::size_t watchdog_cooldown_ticks = 8;

  /// Update rule for repair solves. kBestImprovement for production;
  /// kCycleProbe exists so tests and the chaos bench can inject a cycling
  /// rule and prove the watchdog contains it.
  core::UpdateRule repair_rule = core::UpdateRule::kBestImprovement;
  /// Solver threads for repairs (see GameOptions::threads); the move
  /// sequence — and therefore the trajectory hash — is identical for
  /// every value.
  std::size_t solver_threads = 1;
};

}  // namespace idde::serve
