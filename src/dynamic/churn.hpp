// Session churn: users go online and offline over time (the second half of
// the paper's future-work dynamics, next to mobility). Modelled as an
// independent two-state Markov process per user: an offline user comes
// online at rate `arrival_rate_hz`; an online session ends at rate
// 1/mean_session_s. Only online users transmit, interfere, and request
// data.
#pragma once

#include <cstddef>
#include <vector>

#include "util/random.hpp"

namespace idde::dynamic {

struct ChurnParams {
  /// Per-offline-user rate of coming online (Hz). 0 disables arrivals.
  double arrival_rate_hz = 1.0 / 120.0;
  /// Mean online session length (seconds). <= 0 disables departures.
  double mean_session_s = 300.0;
  /// Fraction of users online at t = 0.
  double initial_online_fraction = 1.0;
};

class ChurnProcess {
 public:
  ChurnProcess(std::size_t user_count, ChurnParams params, util::Rng& rng);

  /// Advances all users by dt; returns how many toggled state.
  std::size_t step(double dt_seconds, util::Rng& rng);

  [[nodiscard]] bool online(std::size_t user) const { return online_[user]; }
  [[nodiscard]] const std::vector<bool>& mask() const noexcept {
    return online_;
  }
  [[nodiscard]] std::size_t online_count() const noexcept { return count_; }
  [[nodiscard]] std::size_t user_count() const noexcept {
    return online_.size();
  }

  /// Overwrites the online mask verbatim (checkpoint restore); the online
  /// count is recomputed. Size must match the construction-time count; the
  /// caller restores the churn RNG stream separately.
  void restore_mask(std::vector<bool> online);

 private:
  std::vector<bool> online_;
  ChurnParams params_;
  std::size_t count_ = 0;
};

}  // namespace idde::dynamic
