// Overload experiment plumbing: one "cell" = (QoS config, optional fault
// profile, DES options, seed) replayed through the overload-aware DES.
// Shared by bench/ext_overload (the load x policy x budget sweep and the
// chaos soak) and the `replay` subcommand of tools/idde_tool, so both
// agree on how a cell is wired and how its SLO accounting is rendered.
#pragma once

#include "core/strategy.hpp"
#include "des/flow_sim.hpp"
#include "fault/fault_plan.hpp"
#include "model/instance.hpp"
#include "qos/config.hpp"
#include "util/json.hpp"

namespace idde::sim {

/// One cell of the overload grid. `des.qos` and `des.fault_plan` are
/// overwritten by run_overload_cell — configure faults via `fault` and
/// overload via `qos` instead.
struct OverloadCell {
  qos::QosConfig qos;
  fault::FaultProfile fault;  ///< inert() = pure overload, no chaos
  des::FlowSimOptions des;
  std::uint64_t seed = 1;
};

/// Replays `strategy` through the overload-aware DES: draws the seeded
/// fault plan when the profile is active, wires the QoS config through
/// FlowSimOptions and runs. Deterministic in (instance, strategy, cell).
[[nodiscard]] des::FlowSimResult run_overload_cell(
    const model::ProblemInstance& instance, const core::Strategy& strategy,
    const OverloadCell& cell);

/// Renders the SLO accounting of one run (a BENCH_overload.json row).
[[nodiscard]] util::Json qos_stats_to_json(const des::QosStats& stats);

/// The canonical bench/CI overload configuration: Poisson arrivals at
/// `load_multiplier` x the request matrix, bounded admission with the
/// given shedding policy, a deadline sized so a 1x load meets it
/// comfortably, and a retry budget at `retry_ratio` (negative =
/// unlimited). Breakers stay off here — they only matter under chaos
/// (see chaos_qos_config).
[[nodiscard]] qos::QosConfig overload_qos_config(double load_multiplier,
                                                 qos::SheddingPolicy policy,
                                                 double retry_ratio);

/// The chaos-soak configuration: overload_qos_config plus enabled
/// circuit breakers (the fault plan supplies the failures that trip
/// them).
[[nodiscard]] qos::QosConfig chaos_qos_config(double load_multiplier,
                                              qos::SheddingPolicy policy,
                                              double retry_ratio);

/// The fault profile paired with chaos_qos_config in the soak runner.
[[nodiscard]] fault::FaultProfile chaos_fault_profile();

}  // namespace idde::sim
