file(REMOVE_RECURSE
  "CMakeFiles/test_core_delivery.dir/test_core_delivery.cpp.o"
  "CMakeFiles/test_core_delivery.dir/test_core_delivery.cpp.o.d"
  "test_core_delivery"
  "test_core_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
