// Builds ProblemInstances following Section 4.2/4.3 of the paper:
//  - layout sub-sampled from the (synthetic) EUA scenario,
//  - data sizes drawn from {30, 60, 90} MB,
//  - reserved storage U[30, 300] MB per server,
//  - edge link speeds U[2000, 6000] MB/s, cloud speed 600 MB/s,
//  - 3 channels x 200 MB/s per server, noise -174 dBm,
//  - user powers U[1, 5] W, per-user rate caps around 200 MB/s,
//  - density * N random links.
// All distributions are driven by one seed for full reproducibility.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/eua.hpp"
#include "model/instance.hpp"
#include "net/graph_gen.hpp"
#include "radio/pathloss.hpp"
#include "util/random.hpp"

namespace idde::model {

struct InstanceParams {
  std::size_t server_count = 30;  ///< N
  std::size_t user_count = 200;   ///< M
  std::size_t data_count = 5;     ///< K
  double density = 1.0;           ///< links = density * N

  // Radio layer (Section 4.2).
  std::size_t channels_per_server = 3;
  double channel_bandwidth_mbps = 200.0;
  double noise_dbm = -174.0;
  double min_power_watts = 1.0;
  double max_power_watts = 5.0;
  double pathloss_eta = 1.0;
  double pathloss_exponent = 3.0;
  /// Log-normal shadowing stddev in dB; 0 (the paper's setting) disables
  /// it. Used by the propagation-robustness ablation.
  double shadowing_stddev_db = 0.0;
  /// R_{j,max}: Shannon-capacity cap per user. The paper fixes no value;
  /// U[150, 250] MB/s reproduces the observed ~200 MB/s low-load plateau
  /// of Fig. 4(a).
  double min_max_rate_mbps = 150.0;
  double max_max_rate_mbps = 250.0;

  // Storage / data layer (Section 4.2).
  std::vector<double> data_size_choices_mb{30.0, 60.0, 90.0};
  double min_storage_mb = 30.0;
  double max_storage_mb = 300.0;

  // Network layer (Section 4.2).
  double min_link_speed_mbps = 2000.0;
  double max_link_speed_mbps = 6000.0;
  double cloud_speed_mbps = 600.0;

  // Request workload. Every user requests one item drawn from a Zipf
  // popularity law, plus further items with geometric tail probability
  // (matching the Fig. 2 exemplar where some users request two items).
  double zipf_exponent = 0.8;
  double extra_request_prob = 0.2;
  std::size_t max_requests_per_user = 2;

  // Spatial layout.
  geo::EuaScenarioParams eua;
};

class InstanceBuilder {
 public:
  explicit InstanceBuilder(InstanceParams params);

  /// Builds a fresh instance from `seed`. Each call regenerates the full
  /// EUA scenario from the same master layout seed and re-sub-samples, so
  /// two calls with equal seeds are identical.
  [[nodiscard]] ProblemInstance build(std::uint64_t seed) const;

  [[nodiscard]] const InstanceParams& params() const noexcept {
    return params_;
  }

 private:
  InstanceParams params_;
};

/// One-call convenience used by tests.
[[nodiscard]] ProblemInstance make_instance(const InstanceParams& params,
                                            std::uint64_t seed);

}  // namespace idde::model
