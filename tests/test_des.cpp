// Flow-level DES: conservation, contention behaviour, agreement with the
// analytic model in the uncontended limit, and tail/fault metrics.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/idde_g.hpp"
#include "core/metrics.hpp"
#include "des/flow_sim.hpp"
#include "fault/fault_plan.hpp"
#include "model/instance_builder.hpp"
#include "sim/paper.hpp"

namespace {

using namespace idde;

model::InstanceParams small_params() {
  model::InstanceParams p = sim::paper_default_params();
  p.server_count = 10;
  p.user_count = 50;
  p.data_count = 4;
  return p;
}

struct Solved {
  model::ProblemInstance instance;
  core::Strategy strategy;
};

Solved solved_instance(std::uint64_t seed) {
  model::ProblemInstance instance = model::make_instance(small_params(), seed);
  util::Rng rng(seed);
  core::Strategy strategy = core::IddeG().solve(instance, rng);
  return Solved{std::move(instance), std::move(strategy)};
}

TEST(FlowSim, OneFlowPerRequest) {
  const auto s = solved_instance(1);
  des::FlowLevelSimulator sim(s.instance);
  util::Rng rng(1);
  const auto result = sim.run(s.strategy, rng);
  EXPECT_EQ(result.flows.size(), s.instance.requests().total_requests());
  EXPECT_EQ(result.flows.size(),
            result.local_hits + result.cloud_fetches +
                (result.flows.size() - result.local_hits -
                 result.cloud_fetches));
  for (const auto& flow : result.flows) {
    EXPECT_GE(flow.completion_s, flow.arrival_s);
  }
}

TEST(FlowSim, LocalHitsAreInstantCloudMatchesAnalytic) {
  const auto s = solved_instance(2);
  des::FlowLevelSimulator sim(s.instance);
  util::Rng rng(2);
  const auto result = sim.run(s.strategy, rng);
  for (const auto& flow : result.flows) {
    if (flow.local_hit) {
      EXPECT_DOUBLE_EQ(flow.duration_s(), 0.0);
      EXPECT_EQ(flow.hops, 0u);
    }
    if (flow.from_cloud) {
      const double expected = s.instance.latency().cloud_transfer_seconds(
          s.instance.data(flow.item).size_mb);
      EXPECT_NEAR(flow.duration_s(), expected, 1e-9);
    }
  }
}

TEST(FlowSim, UncontendedLimitMatchesAnalyticLatency) {
  // With enormous link capacity every flow gets its full analytic rate,
  // so the DES mean must converge to the analytic L_avg.
  const auto s = solved_instance(3);
  des::FlowSimOptions options;
  options.link_capacity_scale = 1e6;
  des::FlowLevelSimulator sim(s.instance, options);
  util::Rng rng(3);
  const auto result = sim.run(s.strategy, rng);
  const double analytic_ms = core::average_latency_ms(
      s.instance, s.strategy.allocation, s.strategy.delivery);
  // Not exact: the analytic model books each routed transfer at the sum of
  // per-hop times, while scaled-up capacity makes it ~0. Local hits and
  // cloud legs dominate both, so the means must be close.
  EXPECT_LE(result.mean_duration_ms, analytic_ms + 1e-6);
}

TEST(FlowSim, BatchArrivalContentionNeverFasterThanAnalytic) {
  // At scale 1.0 with everything arriving at t=0, sharing can only slow
  // transfers down relative to the exclusive-bandwidth analytic model.
  const auto s = solved_instance(4);
  des::FlowLevelSimulator sim(s.instance);
  util::Rng rng(4);
  const auto result = sim.run(s.strategy, rng);
  const double analytic_ms = core::average_latency_ms(
      s.instance, s.strategy.allocation, s.strategy.delivery);
  EXPECT_GE(result.mean_duration_ms, analytic_ms - 1e-6);
}

TEST(FlowSim, TighterLinksIncreaseLatency) {
  const auto s = solved_instance(5);
  util::Rng rng(5);
  des::FlowSimOptions normal;
  des::FlowSimOptions tight;
  tight.link_capacity_scale = 0.05;
  const auto fast = des::FlowLevelSimulator(s.instance, normal)
                        .run(s.strategy, rng);
  const auto slow = des::FlowLevelSimulator(s.instance, tight)
                        .run(s.strategy, rng);
  EXPECT_GE(slow.mean_duration_ms, fast.mean_duration_ms);
  EXPECT_GE(slow.makespan_s, fast.makespan_s);
}

TEST(FlowSim, SpreadArrivalsReduceContention) {
  const auto s = solved_instance(6);
  des::FlowSimOptions burst;
  burst.link_capacity_scale = 0.1;
  des::FlowSimOptions spread = burst;
  spread.arrival_window_s = 60.0;
  util::Rng rng_a(6);
  util::Rng rng_b(6);
  const auto burst_result =
      des::FlowLevelSimulator(s.instance, burst).run(s.strategy, rng_a);
  const auto spread_result =
      des::FlowLevelSimulator(s.instance, spread).run(s.strategy, rng_b);
  // Spreading arrivals over a minute lowers per-flow contention.
  EXPECT_LE(spread_result.mean_duration_ms,
            burst_result.mean_duration_ms + 1e-9);
}

TEST(FlowSim, DeterministicWithoutArrivalJitter) {
  const auto s = solved_instance(7);
  des::FlowLevelSimulator sim(s.instance);
  util::Rng rng_a(1);
  util::Rng rng_b(2);  // rng unused when arrival_window_s == 0
  const auto a = sim.run(s.strategy, rng_a);
  const auto b = sim.run(s.strategy, rng_b);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_DOUBLE_EQ(a.flows[f].completion_s, b.flows[f].completion_s);
  }
}

TEST(FlowSim, TailMetricsAreOrderedAndMaxIsExact) {
  const auto s = solved_instance(9);
  des::FlowSimOptions options;
  options.link_capacity_scale = 0.1;  // contention spreads the tail
  options.arrival_window_s = 5.0;
  des::FlowLevelSimulator sim(s.instance, options);
  util::Rng rng(9);
  const auto result = sim.run(s.strategy, rng);
  EXPECT_LE(result.mean_duration_ms, result.max_duration_ms + 1e-12);
  EXPECT_LE(result.p95_duration_ms, result.p99_duration_ms + 1e-12);
  EXPECT_LE(result.p99_duration_ms, result.max_duration_ms + 1e-12);
  double manual_max = 0.0;
  for (const auto& flow : result.flows) {
    manual_max = std::max(manual_max, flow.duration_s() * 1e3);
  }
  EXPECT_DOUBLE_EQ(result.max_duration_ms, manual_max);
}

TEST(FlowSim, InertFaultPlanIsBitIdenticalToNoPlan) {
  // Zero-cost-when-disabled: attaching an all-zero FaultPlan must take the
  // exact fault-free code path — same rng draws, same float ops, so every
  // metric is bit-identical, not merely close.
  const auto s = solved_instance(10);
  const fault::FaultPlan inert_plan;
  ASSERT_TRUE(inert_plan.inert());
  des::FlowSimOptions base;
  base.arrival_window_s = 10.0;
  base.link_capacity_scale = 0.2;
  des::FlowSimOptions with_plan = base;
  with_plan.fault_plan = &inert_plan;
  util::Rng rng_a(10);
  util::Rng rng_b(10);
  const auto a = des::FlowLevelSimulator(s.instance, base).run(s.strategy,
                                                               rng_a);
  const auto b =
      des::FlowLevelSimulator(s.instance, with_plan).run(s.strategy, rng_b);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].arrival_s, b.flows[f].arrival_s);
    EXPECT_EQ(a.flows[f].completion_s, b.flows[f].completion_s);
    EXPECT_EQ(a.flows[f].retries, b.flows[f].retries);
    EXPECT_EQ(a.flows[f].tier, b.flows[f].tier);
  }
  EXPECT_EQ(a.mean_duration_ms, b.mean_duration_ms);
  EXPECT_EQ(a.p95_duration_ms, b.p95_duration_ms);
  EXPECT_EQ(a.p99_duration_ms, b.p99_duration_ms);
  EXPECT_EQ(a.max_duration_ms, b.max_duration_ms);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.rate_recomputations, b.rate_recomputations);
  EXPECT_EQ(a.availability, 1.0);
  EXPECT_EQ(b.availability, 1.0);
  EXPECT_EQ(b.retry_count, 0u);
  EXPECT_EQ(b.tier_counts[0], b.flows.size());
}

TEST(FlowSim, NonCollaborativeStrategiesNeverRoute) {
  const auto inst = model::make_instance(small_params(), 8);
  util::Rng rng(8);
  core::Strategy strategy = core::IddeG().solve(inst, rng);
  strategy.collaborative_delivery = false;
  des::FlowLevelSimulator sim(inst);
  const auto result = sim.run(strategy, rng);
  for (const auto& flow : result.flows) {
    EXPECT_TRUE(flow.local_hit || flow.from_cloud);
    EXPECT_EQ(flow.hops, 0u);
  }
}

}  // namespace
