"""idde_analyze: the project's multi-rule static-analysis engine.

Replaces the former tools/lint/check_project.py grab-bag with a shared
scanner (comment/string stripping, suppressions, baselines, parallel file
scanning) and three rule packs layered on top of the ported legacy rules:

  concurrency    lock-acquisition-graph reconstruction from util::MutexLock
                 sites + IDDE_ACQUIRED_BEFORE/AFTER declarations; undeclared
                 nested locking, declared-edge cycles, unjustified atomics.
  determinism    unordered containers, pointer-keyed ordering, parallel STL
                 numerics, float accumulation inside parallel_for bodies.
  unit-safety    raw double/int64 function parameters/returns in public
                 headers that carry a physical quantity must spell the unit
                 in their name (_ms, _watts, _dbm, _hz, _bytes, ...).

See DESIGN.md section 14 for the architecture and the rule catalog.
"""

__all__ = [
    "baseline",
    "config",
    "findings",
    "runner",
    "source",
]
