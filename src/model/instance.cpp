#include "model/instance.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace idde::model {

ProblemInstance::ProblemInstance(std::vector<EdgeServer> servers,
                                 std::vector<User> users,
                                 std::vector<DataItem> data,
                                 RequestMatrix requests, net::Graph graph,
                                 net::DeliveryLatencyModel latency,
                                 radio::RadioEnvironment radio_env)
    : servers_(std::move(servers)),
      users_(std::move(users)),
      data_(std::move(data)),
      requests_(std::move(requests)),
      graph_(std::move(graph)),
      latency_(std::move(latency)),
      radio_env_(std::move(radio_env)) {
  // Input validation, not internal invariants: instances are assembled
  // from files and generator output, so inconsistency throws a typed
  // ValidationError (structured CLI error contract) instead of aborting.
  util::validate(requests_.user_count() == users_.size(),
                 "instance: request matrix user count mismatch");
  util::validate(requests_.data_count() == data_.size(),
                 "instance: request matrix data count mismatch");
  util::validate(graph_.node_count() == servers_.size(),
                 "instance: graph node count mismatch");
  util::validate(latency_.server_count() == servers_.size(),
                 "instance: latency model server count mismatch");
  util::validate(radio_env_.server_count == servers_.size(),
                 "instance: radio environment server count mismatch");
  util::validate(radio_env_.user_count == users_.size(),
                 "instance: radio environment user count mismatch");
  radio_env_.check();

  covered_users_.resize(servers_.size());
  for (UserId j = 0; j < users_.size(); ++j) {
    for (const ServerId i : radio_env_.covering_servers[j]) {
      covered_users_[i].push_back(j);
    }
  }
  for (const EdgeServer& s : servers_) {
    util::validate(s.storage_mb >= 0.0, "instance: negative server storage");
    total_storage_mb_ += s.storage_mb;
  }
  for (const DataItem& d : data_) {
    util::validate(d.size_mb > 0.0, "instance: non-positive data size");
    max_data_size_mb_ = std::max(max_data_size_mb_, d.size_mb);
  }
}

}  // namespace idde::model
