file(REMOVE_RECURSE
  "CMakeFiles/idde_tool.dir/idde_tool.cpp.o"
  "CMakeFiles/idde_tool.dir/idde_tool.cpp.o.d"
  "idde_tool"
  "idde_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idde_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
