// Spatial point-process generators used to synthesise edge-server and user
// layouts. Three processes cover the layouts the evaluation needs:
//  - uniform: homogeneous Poisson-like scatter,
//  - jittered grid: base-station-like regular deployments,
//  - Thomas cluster: users clumping around attraction points (malls,
//    stations), which is what makes interference non-trivial.
#pragma once

#include <vector>

#include "geo/bbox.hpp"
#include "geo/point.hpp"
#include "util/random.hpp"

namespace idde::geo {

/// `count` i.i.d. uniform points in `bounds`.
[[nodiscard]] std::vector<Point> generate_uniform(std::size_t count,
                                                  const BoundingBox& bounds,
                                                  util::Rng& rng);

/// Roughly sqrt(count) x sqrt(count) grid filled row-major to exactly
/// `count` points, each jittered by U[-jitter, jitter] per axis and clamped
/// to bounds.
[[nodiscard]] std::vector<Point> generate_jittered_grid(
    std::size_t count, const BoundingBox& bounds, double jitter,
    util::Rng& rng);

struct ThomasParams {
  std::size_t parent_count = 10;  ///< cluster centres (uniform in bounds)
  double cluster_stddev = 50.0;   ///< Gaussian spread around each centre, m
  double background_fraction = 0.1;  ///< fraction drawn uniformly instead
};

/// Thomas cluster process conditioned on a fixed total point count.
/// Cluster centres may be supplied (e.g. server sites) or generated.
[[nodiscard]] std::vector<Point> generate_thomas(
    std::size_t count, const BoundingBox& bounds, const ThomasParams& params,
    util::Rng& rng, const std::vector<Point>* centers = nullptr);

}  // namespace idde::geo
