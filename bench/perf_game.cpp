// perf_game — microbenchmark for the IDDE-U best-response engine.
//
// Times four engine configurations on Set-2-sized instances (N=30, K=5;
// Set #2 tops out at M=350) under the paper's kBestImprovement rule:
//   full         the seed engine: every user re-evaluated every round
//                (GameOptions::incremental = false),
//   scalar       dirty-set caching, serial, per-slot field.benefit() calls
//                (GameOptions::batched = false) — the scalar kernel oracle,
//   incremental  dirty-set caching, serial, batched SoA kernel,
//   parallel     dirty-set caching + ThreadPool fan-out of the dirty set.
// All four are required to produce bit-identical move sequences; the run
// aborts if they diverge. Results (evaluation counts, rounds, wall time,
// derived ratios) go to stdout and to a machine-readable JSON trajectory
// (--out, default BENCH_game.json) for cross-PR tracking.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/game.hpp"
#include "model/instance_builder.hpp"
#include "obs/obs.hpp"
#include "sim/paper.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using namespace idde;

struct ConfigTotals {
  std::string name;
  std::size_t benefit_evaluations = 0;
  std::size_t moves = 0;
  std::size_t rounds = 0;
  double solve_ms = 0.0;
};

core::GameOptions engine_config(const std::string& name) {
  core::GameOptions options;  // kBestImprovement: Algorithm 1 literally
  if (name == "full") {
    options.incremental = false;
  } else if (name == "scalar") {
    options.incremental = true;
    options.threads = 1;
    options.batched = false;  // per-slot benefit() calls, the kernel oracle
  } else if (name == "incremental") {
    options.incremental = true;
    options.threads = 1;
  } else {
    IDDE_ASSERT(name == "parallel", "unknown engine config");
    options.incremental = true;
    options.threads = 0;  // hardware concurrency
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t servers = 30;
  std::size_t users = 350;
  std::size_t data = 5;
  std::size_t reps = 3;
  std::size_t base_seed = 1;
  std::string out = "BENCH_game.json";
  bool telemetry = false;
  std::string trace_out;
  util::CliParser cli(
      "perf_game: serial-full vs incremental vs incremental+parallel "
      "IDDE-U engines on a Set-2-sized instance");
  cli.add_size("servers", &servers, "edge servers N");
  cli.add_size("users", &users, "users M (Set #2 tops out at 350)");
  cli.add_size("data", &data, "data items K");
  cli.add_size("reps", &reps, "seeded instances to average over");
  cli.add_size("seed", &base_seed, "first instance seed");
  cli.add_string("out", &out, "JSON output path (empty = skip)");
  cli.add_flag("telemetry", &telemetry,
               "enable runtime telemetry (adds a telemetry block to --out)");
  cli.add_string("trace-out", &trace_out,
                 "write a chrome://tracing JSON here (implies --telemetry)");
  if (!cli.parse(argc, argv)) return 0;
  if (telemetry) obs::set_enabled(true);
  if (!trace_out.empty()) obs::set_trace_enabled(true);

  model::InstanceParams params = sim::paper_default_params();
  params.server_count = servers;
  params.user_count = users;
  params.data_count = data;

  const std::vector<std::string> config_names{"full", "scalar", "incremental",
                                              "parallel"};
  std::vector<ConfigTotals> totals;
  for (const std::string& name : config_names) {
    totals.push_back(ConfigTotals{name, 0, 0, 0, 0.0});
  }

  std::printf("perf_game: N=%zu M=%zu K=%zu, %zu instance(s)\n\n", servers,
              users, data, reps);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const std::uint64_t seed = base_seed + rep;
    const model::ProblemInstance instance = model::make_instance(params, seed);
    core::AllocationProfile reference_allocation;
    std::size_t reference_moves = 0;
    for (std::size_t c = 0; c < config_names.size(); ++c) {
      core::IddeUGame game(instance, engine_config(config_names[c]));
      const std::string span_name = "perf_game." + config_names[c];
      const obs::ScopedSpan span(span_name);
      const core::GameResult result = game.run();
      const double ms = span.elapsed_ms();
      IDDE_ASSERT(result.converged, "engine hit the round cap");
      if (c == 0) {
        reference_allocation = result.allocation;
        reference_moves = result.moves;
      } else {
        // The caching/threading layers must not change the dynamics.
        IDDE_ASSERT(result.moves == reference_moves,
                    "engine variants diverged in move count");
        IDDE_ASSERT(result.allocation == reference_allocation,
                    "engine variants diverged in final allocation");
      }
      totals[c].benefit_evaluations += result.benefit_evaluations;
      totals[c].moves += result.moves;
      totals[c].rounds += result.rounds;
      totals[c].solve_ms += ms;
      std::printf("  seed %-4llu %-12s %10zu evals %6zu moves %8.2f ms\n",
                  static_cast<unsigned long long>(seed),
                  config_names[c].c_str(), result.benefit_evaluations,
                  result.moves, ms);
    }
  }

  const ConfigTotals& full = totals[0];
  const ConfigTotals& scalar = totals[1];
  const ConfigTotals& incremental = totals[2];
  const ConfigTotals& parallel = totals[3];
  const auto ratio = [](double a, double b) { return b > 0.0 ? a / b : 0.0; };
  const double eval_ratio =
      ratio(static_cast<double>(full.benefit_evaluations),
            static_cast<double>(incremental.benefit_evaluations));
  const double speedup_incremental = ratio(full.solve_ms, incremental.solve_ms);
  const double speedup_parallel = ratio(full.solve_ms, parallel.solve_ms);
  const double speedup_batched = ratio(scalar.solve_ms, incremental.solve_ms);

  std::printf("\n%-12s %14s %8s %8s %10s\n", "config", "evals", "moves",
              "rounds", "ms");
  for (const ConfigTotals& t : totals) {
    std::printf("%-12s %14zu %8zu %8zu %10.2f\n", t.name.c_str(),
                t.benefit_evaluations, t.moves, t.rounds, t.solve_ms);
  }
  std::printf(
      "\nincremental does %.1fx fewer benefit evaluations than the seed "
      "engine\nwall-clock speedup: incremental %.2fx, parallel %.2fx\n"
      "batched kernel speedup over the scalar kernel (serial dirty-set): "
      "%.2fx\n",
      eval_ratio, speedup_incremental, speedup_parallel, speedup_batched);

  if (!out.empty()) {
    util::JsonArray configs;
    for (const ConfigTotals& t : totals) {
      util::JsonObject entry;
      entry["name"] = t.name;
      entry["benefit_evaluations"] = t.benefit_evaluations;
      entry["moves"] = t.moves;
      entry["rounds"] = t.rounds;
      entry["solve_ms"] = t.solve_ms;
      configs.emplace_back(std::move(entry));
    }
    util::JsonObject doc;
    doc["bench"] = std::string("perf_game");
    doc["rule"] = std::string("best_improvement");
    util::JsonObject shape;
    shape["servers"] = servers;
    shape["users"] = users;
    shape["data"] = data;
    shape["reps"] = reps;
    shape["base_seed"] = base_seed;
    doc["instance"] = std::move(shape);
    doc["configs"] = std::move(configs);
    doc["eval_ratio_full_over_incremental"] = eval_ratio;
    doc["speedup_full_over_incremental"] = speedup_incremental;
    doc["speedup_full_over_parallel"] = speedup_parallel;
    doc["speedup_scalar_over_batched"] = speedup_batched;
    doc["telemetry"] = obs::telemetry_json();
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    file << util::Json(std::move(doc)).dump(2) << "\n";
    std::printf("wrote %s\n", out.c_str());
  }
  if (!trace_out.empty()) {
    if (!obs::Tracer::global().write_chrome_trace(trace_out)) {
      std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", trace_out.c_str());
  }
  return 0;
}
