// Incremental SINR/interference bookkeeping for the IDDE-U game.
//
// Implements Section 2.2 exactly:
//   SINR  (Eq. 2): r_{i,x,j} = g_{i,j} p_j /
//                   (g_{i,j} * sum_{t in U_{i,x} \ j} p_t + F_{i,x,j} + w)
//   cross-cell interference:
//         F_{i,x,j} = sum_{o in V_j \ i} sum_{t in U_{o,x}} g_{i,t} p_t
//   rate  (Eq. 3): R_{i,x,j} = B_{i,x} log2(1 + r_{i,x,j})
//   benefit (Eq. 12): like the SINR but with the full channel power sum
//         (own power included) and no noise term.
//
// The game evaluates a user's benefit at every candidate channel every
// round, so evaluation must be cheap. The field maintains:
//   power_sum[i][x]          = sum of p_t over users allocated to c_{i,x}
//   received[o][x][i]        = sum_{t in U_{o,x}} g_{i,t} p_t
// so evaluating one candidate costs O(|V_j|) and applying a move costs
// O(N). A from-scratch reference implementation is provided for tests and
// the ablation bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace idde::radio {

/// Static radio-layer description of an instance; all vectors indexed by
/// server i in [0,N) and user j in [0,M).
struct RadioEnvironment {
  std::size_t server_count = 0;
  std::size_t user_count = 0;
  std::size_t channels_per_server = 3;
  /// Row-major N x M channel gains g_{i,j} (channel-independent, Sec. 2.2).
  std::vector<double> gain;
  /// Per-user transmit power p_j, watts.
  std::vector<double> power;
  /// Per-server per-channel bandwidth B_{i,x}, row-major N x X, MB/s.
  std::vector<double> bandwidth;
  /// Coverage sets V_j as server indices, ascending.
  std::vector<std::vector<std::size_t>> covering_servers;
  /// Noise floor w, watts.
  double noise_watts = 0.0;

  [[nodiscard]] double gain_at(std::size_t server, std::size_t user) const {
    return gain[server * user_count + user];
  }
  [[nodiscard]] double bandwidth_mbps_at(std::size_t server,
                                    std::size_t channel) const {
    return bandwidth[server * channels_per_server + channel];
  }
  /// Validates shapes and value ranges; throws util::ValidationError on
  /// the first inconsistency (environments come from files and generator
  /// parameters — bad input must surface as a structured CLI error, not an
  /// abort; see src/util/error.hpp).
  void check() const;
};

/// A user's channel assignment. `kUnallocated` encodes alpha_j = (0, 0).
struct ChannelSlot {
  std::size_t server = kNone;
  std::size_t channel = 0;

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  [[nodiscard]] bool allocated() const noexcept { return server != kNone; }
  friend bool operator==(const ChannelSlot&, const ChannelSlot&) = default;
};

inline constexpr ChannelSlot kUnallocated{};

/// Delta report of the field's most recent mutation. A mutation perturbs at
/// most two channel slots (`from` and `to`); every cached quantity that
/// depends only on *other* slots is still valid afterwards — the invariant
/// the game's incremental dirty-set tracking is built on.
struct MoveDelta {
  std::size_t user = ChannelSlot::kNone;
  ChannelSlot from = kUnallocated;  ///< slot vacated (kUnallocated on add)
  ChannelSlot to = kUnallocated;    ///< slot entered (kUnallocated on remove)
  std::uint64_t version = 0;        ///< field version after the mutation
};

/// Thread-compatibility contract (relied on by core::IddeUGame's parallel
/// dirty-set refresh and stress-tested under TSan): the field is
/// *thread-compatible*, not thread-safe. Concurrent calls to the const
/// evaluation API (sinr/rate_mbps/benefit/slot_of/channel_power_watts/version/
/// slot_version/last_move) are race-free because they only read; any
/// mutation (add_user/remove_user/move_user/clear) requires exclusive
/// access externally — there is deliberately no internal lock, because the
/// game alternates strictly between a serial mutation phase and a parallel
/// read-only phase, and a per-call lock would serialise the hot path. The
/// version counters double as the enforcement hook: parallel readers
/// snapshot version() and assert it unchanged afterwards.
class InterferenceField {
 public:
  /// The environment must outlive the field.
  explicit InterferenceField(const RadioEnvironment& env);

  /// Places user j on (server, channel); j must currently be unallocated.
  void add_user(std::size_t user, ChannelSlot slot);
  /// Removes user j from its current channel; no-op when unallocated.
  void remove_user(std::size_t user);
  /// remove + add in one call.
  void move_user(std::size_t user, ChannelSlot slot);
  /// Removes every user.
  void clear();

  [[nodiscard]] ChannelSlot slot_of(std::size_t user) const {
    return allocation_[user];
  }

  /// SINR of user j as if allocated at `slot` (Eq. 2). The user's own
  /// current contribution is excluded wherever it is, so this evaluates
  /// hypothetical moves without mutating state.
  [[nodiscard]] double sinr(std::size_t user, ChannelSlot slot) const;

  /// Shannon rate (Eq. 3) at the hypothetical slot; MB/s, uncapped.
  [[nodiscard]] double rate_mbps(std::size_t user, ChannelSlot slot) const;

  /// Game benefit (Eq. 12) at the hypothetical slot.
  [[nodiscard]] double benefit(std::size_t user, ChannelSlot slot) const;

  /// Total received power on (i,x) (sum of p_t of users allocated there).
  [[nodiscard]] double channel_power_watts(std::size_t server,
                                     std::size_t channel) const {
    return power_sum_[server * env_->channels_per_server + channel];
  }

  [[nodiscard]] const RadioEnvironment& env() const noexcept { return *env_; }

  /// Monotone mutation counter: bumped once per add/remove (twice per move).
  /// Equal versions imply an identical field; consumers cache against it.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Per-channel-slot version: bumped whenever the slot's power sum or
  /// received-power row changes. A cached evaluation that only read slots
  /// whose versions are unchanged is still exact.
  [[nodiscard]] std::uint64_t slot_version(ChannelSlot slot) const {
    IDDE_EXPECTS(slot.allocated());
    return slot_version_[chan_index(slot)];
  }

  /// The most recent mutation (user == ChannelSlot::kNone before the first
  /// one and after clear()). move_user reports one combined delta.
  [[nodiscard]] const MoveDelta& last_move() const noexcept {
    return last_move_;
  }

 private:
  /// BatchEvaluator reads power_sum_/received_/users_on_ directly so its
  /// candidate sweep can stream whole received-power rows; it obeys the
  /// same read-only thread-compatibility contract as the public
  /// evaluation API and never mutates the field.
  friend class BatchEvaluator;

  /// F_{i,x,j} with user j's own contribution excluded.
  [[nodiscard]] double cross_cell_interference_watts(std::size_t user,
                                               ChannelSlot slot) const;
  /// In-cell interference power at `slot` excluding user j: the
  /// g_{i,j} * sum_{t in U_{i,x} \ j} p_t term of Eq. 2.
  [[nodiscard]] double in_cell_power_excluding_watts(std::size_t user,
                                               ChannelSlot slot) const;

  [[nodiscard]] std::size_t chan_index(ChannelSlot slot) const {
    return slot.server * env_->channels_per_server + slot.channel;
  }

  const RadioEnvironment* env_;
  std::vector<ChannelSlot> allocation_;
  /// power_sum_[i * X + x] = sum of p_t over users on c_{i,x}.
  std::vector<double> power_sum_;
  /// received_[(o * X + x) * N + i] = sum_{t in U_{o,x}} g_{i,t} p_t.
  std::vector<double> received_;
  /// Users currently on each channel. When a channel empties, its power
  /// and received-power rows are zeroed exactly: subtraction residues
  /// (~1e-21 W) are otherwise the same order as the -174 dBm noise floor
  /// and would corrupt SINRs on quiet channels.
  std::vector<std::size_t> users_on_;
  /// Change tracking (see version()/slot_version()/last_move()).
  std::uint64_t version_ = 0;
  std::vector<std::uint64_t> slot_version_;
  MoveDelta last_move_;
};

/// From-scratch SINR evaluation used as a test oracle and ablation baseline:
/// O(M + sum |V_j|) per call instead of O(|V_j|).
[[nodiscard]] double sinr_reference(const RadioEnvironment& env,
                                    std::span<const ChannelSlot> allocation,
                                    std::size_t user, ChannelSlot slot);

/// From-scratch game-benefit (Eq. 12) evaluation, derived the same way as
/// sinr_reference: full power sum (own power included), no noise term. Test
/// oracle for InterferenceField::benefit and the game's cached responses.
[[nodiscard]] double benefit_reference(const RadioEnvironment& env,
                                       std::span<const ChannelSlot> allocation,
                                       std::size_t user, ChannelSlot slot);

}  // namespace idde::radio
