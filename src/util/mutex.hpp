// Annotated synchronisation primitives: drop-in std::mutex /
// std::condition_variable wrappers carrying Clang thread-safety-analysis
// capabilities (util/annotations.hpp). A clang build with -Wthread-safety
// -Werror then proves, at compile time, that every IDDE_GUARDED_BY member
// is only touched with its Mutex held — the contract code review cannot
// reliably enforce once state is shared across util::ThreadPool workers.
//
// Zero-cost: every method is an inline forward to the std primitive, so
// Release codegen is identical to using std::mutex directly. CondVar wraps
// std::condition_variable_any so it can wait on the annotated Mutex itself;
// it is used only at task-dispatch boundaries (ThreadPool, parallel_for),
// never on a per-evaluation hot path.
//
// Lock hierarchy (IDDE_ACQUIRED_BEFORE edges are declared where two
// capabilities can be held at once): almost every capability is a leaf.
// The one declared edge is obs::Tracer's rollup_mutex_ -> mutex_ (the
// rollup update in record() pins the buffer registry against reset()).
// tools/analyze/idde_analyze.py reconstructs the acquisition graph from
// MutexLock sites and fails on any nested acquisition without a declared
// edge — declare new edges on the mutex member, as Tracer does.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace idde::util {

/// Annotated exclusive capability wrapping std::mutex. Satisfies
/// BasicLockable, so CondVar can wait on it directly.
class IDDE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IDDE_ACQUIRE() { raw_.lock(); }
  void unlock() IDDE_RELEASE() { raw_.unlock(); }
  [[nodiscard]] bool try_lock() IDDE_TRY_ACQUIRE(true) {
    return raw_.try_lock();
  }

 private:
  std::mutex raw_;
};

/// RAII lock for Mutex (scoped capability). Prefer this over manual
/// lock()/unlock() pairs; the analysis then checks balance automatically.
class IDDE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) IDDE_ACQUIRE(mutex) : mutex_(&mutex) {
    mutex_->lock();
  }
  ~MutexLock() IDDE_RELEASE() { mutex_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mutex_;
};

/// Condition variable paired with Mutex. Waits take the Mutex (which the
/// caller must hold — checked by the analysis); use an explicit
/// `while (!condition) cv.wait(mutex);` loop rather than a predicate
/// lambda, because lambdas do not inherit IDDE_REQUIRES annotations and
/// would defeat the guarded-by checking of the condition itself.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks, and reacquires it before
  /// returning. The unlock/relock happens inside the std implementation,
  /// which the analysis cannot see — hence the suppression; the REQUIRES
  /// contract (held on entry, held on return) is what callers rely on.
  void wait(Mutex& mutex) IDDE_REQUIRES(mutex) IDDE_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mutex);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace idde::util
