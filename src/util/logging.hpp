// Minimal leveled logger writing to stderr. Thread-safe: the global level
// is an atomic and whole lines are serialised onto stderr under an
// annotated util::Mutex (see logging.cpp), so concurrent workers cannot
// interleave fragments. Deliberately not configurable per-module: the
// library is quiet by default and the harness raises verbosity when asked.
#pragma once

#include <string_view>

#include "util/format.hpp"

namespace idde::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parses "debug"/"info"/"warn"/"error"/"off"; unknown strings map to kInfo.
LogLevel parse_log_level(std::string_view name) noexcept;

namespace detail {
void log_write(LogLevel level, std::string_view message);
}  // namespace detail

template <typename... Args>
void log(LogLevel level, std::string_view fmt, Args&&... args) {
  if (level < log_level()) return;
  detail::log_write(level, format(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void log_debug(std::string_view fmt, Args&&... args) {
  log(LogLevel::kDebug, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(std::string_view fmt, Args&&... args) {
  log(LogLevel::kInfo, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(std::string_view fmt, Args&&... args) {
  log(LogLevel::kWarn, fmt, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(std::string_view fmt, Args&&... args) {
  log(LogLevel::kError, fmt, std::forward<Args>(args)...);
}

}  // namespace idde::util
