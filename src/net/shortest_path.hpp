// Shortest-path costs over the edge graph. Both a single-source Dijkstra and
// an all-pairs solver are provided; the all-pairs matrix backs Eq. (8)'s
// L_{k,o,i} lookups, which the greedy delivery phase evaluates millions of
// times.
#pragma once

#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "net/graph.hpp"

namespace idde::net {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Dijkstra from `source`; returns per-node cost (seconds-per-MB).
[[nodiscard]] std::vector<double> dijkstra(const Graph& graph,
                                           std::size_t source);

/// Reusable scratch for repeated Dijkstra runs: the binary heap's backing
/// store survives across calls, so an n-source sweep (CostMatrix) performs
/// no per-source allocation once the heap has grown to its working size.
struct DijkstraScratch {
  std::vector<std::pair<double, std::size_t>> heap;
};

/// As dijkstra(), but writes the per-node costs into `dist` (size
/// node_count) and reuses `scratch` instead of allocating. Values are
/// identical to dijkstra() — the relaxation order is the same; only the
/// storage differs.
void dijkstra_into(const Graph& graph, std::size_t source,
                   std::span<double> dist, DijkstraScratch& scratch);

/// Dense all-pairs cost matrix (row-major, n*n). Runs n Dijkstras, which is
/// O(n (m + n) log n) — cheaper than Floyd–Warshall for the sparse
/// density*N-link topologies used here. The build writes each source's row
/// in place through one reused scratch heap: no per-source allocation, and
/// bit-identical costs to the naive row-copy build.
class CostMatrix {
 public:
  explicit CostMatrix(const Graph& graph);

  /// Seconds-per-MB of the cheapest route from `from` to `to`.
  [[nodiscard]] double cost(std::size_t from, std::size_t to) const {
    return costs_[from * n_ + to];
  }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

 private:
  std::size_t n_;
  std::vector<double> costs_;
};

/// Floyd–Warshall reference implementation (O(n^3)); used by tests as an
/// oracle against the Dijkstra-based CostMatrix.
[[nodiscard]] std::vector<double> floyd_warshall(const Graph& graph);

/// Cache-blocked (tiled) Floyd–Warshall: the classic three-phase scheme
/// that processes `block`-sized tiles so the k-loop's working set stays in
/// L1/L2 instead of streaming the full n*n matrix n times. Same asymptotic
/// O(n^3) but a large constant-factor win on dense graphs once n*n*8 bytes
/// outgrows cache. Path sums associate per tile rather than per scalar k,
/// so results can differ from floyd_warshall() in the last ulps (not in
/// reachability); tests compare with a tolerance, and the bit-exact
/// Dijkstra build remains the production CostMatrix path.
[[nodiscard]] std::vector<double> floyd_warshall_blocked(
    const Graph& graph, std::size_t block = 64);

/// An explicit route: the node sequence of a cheapest path.
struct Route {
  double cost = kUnreachable;       ///< seconds-per-MB along the path
  std::vector<std::size_t> nodes;   ///< from .. to (empty if unreachable)

  [[nodiscard]] std::size_t hops() const noexcept {
    return nodes.empty() ? 0 : nodes.size() - 1;
  }
};

/// Reconstructs one cheapest route (migration reports use the hop count;
/// the metrics layers only need CostMatrix).
[[nodiscard]] Route shortest_route(const Graph& graph, std::size_t from,
                                   std::size_t to);

}  // namespace idde::net
