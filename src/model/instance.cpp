#include "model/instance.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace idde::model {

ProblemInstance::ProblemInstance(std::vector<EdgeServer> servers,
                                 std::vector<User> users,
                                 std::vector<DataItem> data,
                                 RequestMatrix requests, net::Graph graph,
                                 net::DeliveryLatencyModel latency,
                                 radio::RadioEnvironment radio_env)
    : servers_(std::move(servers)),
      users_(std::move(users)),
      data_(std::move(data)),
      requests_(std::move(requests)),
      graph_(std::move(graph)),
      latency_(std::move(latency)),
      radio_env_(std::move(radio_env)) {
  IDDE_EXPECTS(requests_.user_count() == users_.size());
  IDDE_EXPECTS(requests_.data_count() == data_.size());
  IDDE_EXPECTS(graph_.node_count() == servers_.size());
  IDDE_EXPECTS(latency_.server_count() == servers_.size());
  IDDE_EXPECTS(radio_env_.server_count == servers_.size());
  IDDE_EXPECTS(radio_env_.user_count == users_.size());
  radio_env_.check();

  covered_users_.resize(servers_.size());
  for (UserId j = 0; j < users_.size(); ++j) {
    for (const ServerId i : radio_env_.covering_servers[j]) {
      covered_users_[i].push_back(j);
    }
  }
  for (const EdgeServer& s : servers_) {
    IDDE_EXPECTS(s.storage_mb >= 0.0);
    total_storage_mb_ += s.storage_mb;
  }
  for (const DataItem& d : data_) {
    IDDE_EXPECTS(d.size_mb > 0.0);
    max_data_size_mb_ = std::max(max_data_size_mb_, d.size_mb);
  }
}

}  // namespace idde::model
