// DeliveryEvaluator: incremental evaluation of total delivery latency under
// a fixed user allocation. It is the work-horse of Phase 2 — the greedy
// planner asks "how much total latency would placing d_k on v_i remove?"
// thousands of times, so each request caches its current best latency and a
// candidate placement is scored by a single pass over the item's requests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/strategy.hpp"
#include "model/instance.hpp"
#include "net/shortest_path.hpp"

namespace idde::core {

/// Which tier of the degraded preference order actually served a request.
/// kPrimary = the fault-free Eq. 8 argmin was still reachable; kReplica =
/// a surviving replica other than the fault-free choice; kCloud = the
/// request fell all the way through to the cloud even though the
/// fault-free plan would have served it from the edge.
enum class FallbackTier : std::uint8_t { kPrimary = 0, kReplica = 1, kCloud = 2 };

inline constexpr std::size_t kFallbackTiers = 3;

/// Sentinel "replica host" meaning the cloud serves the request.
inline constexpr std::size_t kCloudSource = static_cast<std::size_t>(-1);

/// Outcome of the degraded-mode resolver for one request.
struct FailoverDecision {
  std::size_t source = kCloudSource;  ///< serving host, or kCloudSource
  FallbackTier tier = FallbackTier::kPrimary;
  double seconds = 0.0;  ///< degraded delivery latency (Eq. 8 on survivors)
};

/// Degraded-mode Eq. 8: resolves the request of a user served by `serving`
/// for an item of `size_mb` hosted on `hosts`, falling through the
/// surviving-replica preference order and finally the cloud.
///
/// `server_up` masks dead servers (empty = everything up);
/// `degraded_costs`, when non-null, replaces the fault-free cost matrix
/// (routes over the degraded graph; unreachable pairs are infinite). With
/// every server up and no degraded costs the decision reproduces the
/// fault-free Eq. 8 argmin exactly and the tier is always kPrimary — the
/// resolver is provably zero-cost relabelling when no fault is active.
///
/// `fault_free_hosts`, when non-empty, is the host set the *fault-free*
/// reference argmin classifies tiers against. Callers that pre-filter
/// `hosts` (e.g. dropping corrupt replicas, which the per-server mask
/// cannot express) pass the unfiltered set here so a lost primary is
/// still reported as a fallback rather than silently relabelled kPrimary.
[[nodiscard]] FailoverDecision resolve_with_failover(
    const model::ProblemInstance& instance, std::span<const std::size_t> hosts,
    std::size_t serving, double size_mb,
    std::span<const std::uint8_t> server_up = {},
    const net::CostMatrix* degraded_costs = nullptr,
    std::span<const std::size_t> fault_free_hosts = {});

class DeliveryEvaluator {
 public:
  /// Snapshots the allocation (only the serving server of each user
  /// matters for latency). All requests start at the cloud latency, i.e.
  /// the empty sigma. With `collaborative` false, a replica only helps the
  /// users allocated to its own server (local-or-cloud delivery — the
  /// semantics of the non-collaborative baselines).
  DeliveryEvaluator(const model::ProblemInstance& instance,
                    const AllocationProfile& allocation,
                    bool collaborative = true);

  /// Rewinds to the empty sigma under a (possibly different) allocation,
  /// reusing every buffer: the request structure depends only on the
  /// instance, so no allocation happens here. After reset() the evaluator
  /// is indistinguishable from a freshly constructed one — the planners
  /// keep one evaluator per planner instead of building one per plan.
  void reset(const AllocationProfile& allocation, bool collaborative = true);

  /// Total latency reduction (seconds) of adding sigma_{i,k}, given all
  /// placements committed so far. Never negative (Eq. 8 takes the min).
  [[nodiscard]] double gain_seconds(std::size_t server,
                                    std::size_t item) const;

  /// Commits sigma_{i,k}: permanently lowers the affected requests'
  /// latencies. Returns the realised gain (== gain_seconds beforehand).
  double commit(std::size_t server, std::size_t item);

  /// Recomputes nothing: running total of sum_{j,k} zeta * L_{j,k}.
  [[nodiscard]] double total_latency_seconds() const noexcept {
    return total_latency_;
  }

  /// L_ave (Eq. 9), seconds.
  [[nodiscard]] double average_latency_seconds() const;

  [[nodiscard]] std::size_t request_count() const noexcept {
    return request_user_.size();
  }

  /// Current best latency (Eq. 8) of one request, seconds. Requests are
  /// numbered user-major in `requests().items_of(j)` order.
  [[nodiscard]] double request_latency_seconds(std::size_t id) const {
    return request_latency_[id];
  }

 private:
  const model::ProblemInstance* instance_;
  bool collaborative_;
  /// Serving server per user (ChannelSlot::kNone when unallocated).
  std::vector<std::size_t> serving_server_;
  // Flat request arrays (SoA), ids user-major. The per-item groups are a
  // CSR index over them: item k's request ids are
  // item_req_ids_[item_req_offset_[k] .. item_req_offset_[k+1]), ascending
  // — the same order the old vector-of-vectors held, so per-item gain
  // accumulation is bit-identical.
  std::vector<std::size_t> request_user_;
  std::vector<std::size_t> request_item_;
  std::vector<double> request_latency_;  ///< current best (Eq. 8)
  /// Serving server per request — the gain/commit inner loops read this
  /// directly instead of chasing request -> user -> serving server.
  std::vector<std::size_t> request_serving_;
  std::vector<std::size_t> item_req_ids_;     // request count
  std::vector<std::size_t> item_req_offset_;  // data count + 1
  double total_latency_ = 0.0;
};

/// Convenience: evaluates a complete strategy's total latency from scratch.
[[nodiscard]] double total_latency_seconds(
    const model::ProblemInstance& instance, const AllocationProfile& allocation,
    const DeliveryProfile& delivery, bool collaborative = true);

}  // namespace idde::core
