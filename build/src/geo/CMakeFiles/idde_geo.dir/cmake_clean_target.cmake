file(REMOVE_RECURSE
  "libidde_geo.a"
)
