file(REMOVE_RECURSE
  "CMakeFiles/ext_contention.dir/bench/ext_contention.cpp.o"
  "CMakeFiles/ext_contention.dir/bench/ext_contention.cpp.o.d"
  "bench/ext_contention"
  "bench/ext_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
