# Empty compiler generated dependencies file for idde_model.
# This may be replaced when dependencies are built.
