#include "des/flow_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <queue>

#include "des/fluid.hpp"
#include "fault/injector.hpp"
#include "net/shortest_path.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace idde::des {

using detail::ActiveFlow;
using detail::assign_max_min_rates;

FlowLevelSimulator::FlowLevelSimulator(const model::ProblemInstance& instance,
                                       FlowSimOptions options)
    : instance_(&instance), options_(options) {
  IDDE_EXPECTS(options.link_capacity_scale > 0.0);
  IDDE_EXPECTS(options.arrival_window_s >= 0.0);
  // The gray/hedged engine does not yet compose with the overload engine:
  // a non-inert qos config excludes degradation and hedging (and vice
  // versa), so the two engines can never silently ignore each other.
  const bool gray_active =
      (options.degradation != nullptr && !options.degradation->inert()) ||
      !options.hedge.inert();
  IDDE_EXPECTS(!gray_active || options.qos == nullptr ||
               options.qos->inert());
  // Deduplicated undirected link table; parallel edges keep the fastest.
  std::map<std::pair<std::size_t, std::size_t>, double> best;
  const net::Graph& graph = instance.graph();
  for (std::size_t a = 0; a < graph.node_count(); ++a) {
    for (const net::Neighbor& nb : graph.neighbors(a)) {
      if (a >= nb.node) continue;
      const double capacity =
          options.link_capacity_scale / nb.weight;  // MB/s
      auto [it, inserted] = best.try_emplace({a, nb.node}, capacity);
      if (!inserted) it->second = std::max(it->second, capacity);
    }
  }
  links_.reserve(best.size());
  for (const auto& [key, capacity] : best) {
    links_.push_back(Link{key.first, key.second, capacity});
  }
}

std::size_t FlowLevelSimulator::link_between(std::size_t a,
                                             std::size_t b) const {
  const auto key = std::pair{std::min(a, b), std::max(a, b)};
  for (std::size_t l = 0; l < links_.size(); ++l) {
    if (links_[l].a == key.first && links_[l].b == key.second) return l;
  }
  return kNoLink;
}

FlowSimResult FlowLevelSimulator::run(const core::Strategy& strategy,
                                      util::Rng& rng) const {
  IDDE_OBS_SPAN("des.run");
  // Zero-cost-when-disabled: a null or inert config/plan takes the exact
  // pre-feature code path (same rng draws, same float ops, same results).
  if (options_.qos != nullptr && !options_.qos->inert()) {
    return run_with_qos(strategy, rng);
  }
  if ((options_.degradation != nullptr && !options_.degradation->inert()) ||
      !options_.hedge.inert()) {
    return run_hedged(strategy, rng);
  }
  if (options_.fault_plan == nullptr || options_.fault_plan->inert()) {
    return run_fault_free(strategy, rng);
  }
  return run_with_faults(strategy, rng);
}

FlowSimResult FlowLevelSimulator::run_fault_free(const core::Strategy& strategy,
                                                 util::Rng& rng) const {
  const model::ProblemInstance& instance = *instance_;
  IDDE_EXPECTS(strategy.allocation.size() == instance.user_count());

  FlowSimResult result;
  std::vector<ActiveFlow> pending;  // routed flows not yet started

  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    const bool allocated = strategy.allocation[j].allocated();
    const std::size_t serving =
        allocated ? strategy.allocation[j].server : 0;
    for (const std::size_t k : instance.requests().items_of(j)) {
      const double size = instance.data(k).size_mb;
      FlowRecord record;
      record.user = j;
      record.item = k;
      record.arrival_s = options_.arrival_window_s > 0.0
                             ? rng.uniform(0.0, options_.arrival_window_s)
                             : 0.0;

      // Pick the source per Eq. 8 under the strategy's delivery semantics.
      double best_seconds =
          instance.latency().cloud_transfer_seconds(size);
      std::size_t best_source = static_cast<std::size_t>(-1);  // cloud
      if (allocated) {
        for (const std::size_t host : strategy.delivery.hosts(k)) {
          if (!strategy.collaborative_delivery && host != serving) continue;
          const double seconds =
              instance.latency().edge_transfer_seconds(host, serving, size);
          if (seconds < best_seconds) {
            best_seconds = seconds;
            best_source = host;
          }
        }
      }

      if (best_source == static_cast<std::size_t>(-1)) {
        // Cloud leg: uncontended, as the paper assumes.
        record.from_cloud = true;
        record.completion_s = record.arrival_s + best_seconds;
        result.flows.push_back(record);
        continue;
      }
      if (best_source == serving) {
        record.local_hit = true;
        record.completion_s = record.arrival_s;
        result.flows.push_back(record);
        continue;
      }

      // Routed flow over the shared links.
      const net::Route route =
          net::shortest_route(instance.graph(), best_source, serving);
      IDDE_ASSERT(!route.nodes.empty(), "replica unreachable over the edge");
      record.hops = route.hops();
      const std::size_t index = result.flows.size();
      result.flows.push_back(record);
      ActiveFlow flow;
      flow.record_index = index;
      flow.remaining_mb = size;
      for (std::size_t s = 0; s + 1 < route.nodes.size(); ++s) {
        const std::size_t l = link_between(route.nodes[s],
                                           route.nodes[s + 1]);
        IDDE_ASSERT(l != kNoLink, "route uses a missing link");
        flow.links.push_back(l);
      }
      pending.push_back(std::move(flow));
    }
  }

  // Fluid event loop over the routed flows.
  std::vector<double> capacities;
  capacities.reserve(links_.size());
  for (const Link& link : links_) capacities.push_back(link.capacity_mbps);

  std::sort(pending.begin(), pending.end(),
            [&](const ActiveFlow& x, const ActiveFlow& y) {
              return result.flows[x.record_index].arrival_s <
                     result.flows[y.record_index].arrival_s;
            });
  std::vector<ActiveFlow> active;
  std::size_t next_pending = 0;
  double now = 0.0;
  while (!active.empty() || next_pending < pending.size()) {
    if (active.empty()) {
      // Jump to the next arrival.
      active.push_back(pending[next_pending]);
      now = result.flows[active.back().record_index].arrival_s;
      ++next_pending;
      // Absorb simultaneous arrivals.
      while (next_pending < pending.size() &&
             result.flows[pending[next_pending].record_index].arrival_s <=
                 now) {
        active.push_back(pending[next_pending]);
        ++next_pending;
      }
    }
    assign_max_min_rates(active, capacities);
    ++result.rate_recomputations;

    // Next event: first completion or next arrival.
    double dt_complete = std::numeric_limits<double>::infinity();
    for (const ActiveFlow& flow : active) {
      IDDE_ASSERT(flow.rate_mbps > 0.0, "starved flow");
      dt_complete = std::min(dt_complete, flow.remaining_mb / flow.rate_mbps);
    }
    double dt = dt_complete;
    bool arrival_event = false;
    if (next_pending < pending.size()) {
      const double next_arrival =
          result.flows[pending[next_pending].record_index].arrival_s;
      if (next_arrival - now < dt) {
        dt = next_arrival - now;
        arrival_event = true;
      }
    }

    // Advance fluid state.
    for (ActiveFlow& flow : active) {
      flow.remaining_mb -= flow.rate_mbps * dt;
    }
    now += dt;

    if (arrival_event) {
      active.push_back(pending[next_pending]);
      ++next_pending;
    }
    // Retire completed flows (tolerance for fp drift).
    for (std::size_t f = 0; f < active.size();) {
      if (active[f].remaining_mb <= 1e-9) {
        result.flows[active[f].record_index].completion_s = now;
        active[f] = active.back();
        active.pop_back();
      } else {
        ++f;
      }
    }
  }

  finalize(result);
  return result;
}

FlowSimResult FlowLevelSimulator::run_with_faults(
    const core::Strategy& strategy, util::Rng& rng) const {
  const model::ProblemInstance& instance = *instance_;
  const fault::FaultPlan& plan = *options_.fault_plan;
  IDDE_EXPECTS(strategy.allocation.size() == instance.user_count());
  const fault::FaultInjector injector(instance, plan);
  const bool corruption = plan.replica_corruption_prob() > 0.0;

  FlowSimResult result;
  // Records are created in the same user-major order (and with the same
  // rng draws) as the fault-free replay, so arrival times match exactly.
  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    for (const std::size_t k : instance.requests().items_of(j)) {
      FlowRecord record;
      record.user = j;
      record.item = k;
      record.arrival_s = options_.arrival_window_s > 0.0
                             ? rng.uniform(0.0, options_.arrival_window_s)
                             : 0.0;
      result.flows.push_back(record);
    }
  }

  // A pending delivery attempt: the first try at arrival, retries after
  // aborts. Min-heap on (time, record) keeps event order deterministic.
  struct Attempt {
    double time;
    std::size_t record;
  };
  struct AttemptLater {
    bool operator()(const Attempt& x, const Attempt& y) const {
      if (x.time != y.time) return x.time > y.time;
      return x.record > y.record;
    }
  };
  std::priority_queue<Attempt, std::vector<Attempt>, AttemptLater> queue;
  for (std::size_t r = 0; r < result.flows.size(); ++r) {
    queue.push(Attempt{result.flows[r].arrival_s, r});
  }

  std::vector<double> capacities;
  capacities.reserve(links_.size());
  for (const Link& link : links_) capacities.push_back(link.capacity_mbps);

  std::vector<std::size_t> degraded_hosts;
  std::vector<std::size_t> reference_hosts;
  std::vector<ActiveFlow> active;

  // Starts one attempt at `now`: either records a completion directly
  // (cloud leg, local hit, forced-cloud cap) or adds a routed ActiveFlow.
  const auto start_attempt = [&](std::size_t r, double now) {
    FlowRecord& record = result.flows[r];
    record.from_cloud = false;
    record.local_hit = false;
    const core::ChannelSlot slot = strategy.allocation[record.user];
    const std::size_t serving =
        slot.allocated() ? slot.server : core::ChannelSlot::kNone;
    const double size = instance.data(record.item).size_mb;
    const double cloud_seconds =
        instance.latency().cloud_transfer_seconds(size);

    if (record.retries > options_.max_retries ||
        now - record.arrival_s > options_.timeout_s) {
      // Give up on the edge: one final, unabortable cloud transfer.
      record.forced_cloud = true;
      record.from_cloud = true;
      record.tier = core::FallbackTier::kCloud;
      record.completion_s = plan.cloud_completion(now, cloud_seconds);
      return;
    }

    const fault::AvailabilitySnapshot& snap = injector.snapshot_at(now);
    degraded_hosts.clear();
    reference_hosts.clear();
    for (const std::size_t host : strategy.delivery.hosts(record.item)) {
      if (!strategy.collaborative_delivery && host != serving) continue;
      reference_hosts.push_back(host);
      if (corruption && plan.replica_corrupted(host, record.item)) continue;
      degraded_hosts.push_back(host);
    }
    const core::FailoverDecision decision = core::resolve_with_failover(
        instance, degraded_hosts, serving, size, snap.server_up, &snap.costs,
        reference_hosts);
    record.tier = decision.tier;
    if (decision.source == core::kCloudSource) {
      record.from_cloud = true;
      record.completion_s = plan.cloud_completion(now, decision.seconds);
      return;
    }
    if (decision.source == serving) {
      record.local_hit = true;
      record.completion_s = now;
      return;
    }
    const net::Route route =
        net::shortest_route(snap.graph, decision.source, serving);
    IDDE_ASSERT(!route.nodes.empty(),
                "resolver picked an unreachable replica");
    record.hops = route.hops();
    ActiveFlow flow;
    flow.record_index = r;
    flow.remaining_mb = size;
    for (std::size_t s = 0; s + 1 < route.nodes.size(); ++s) {
      const std::size_t l = link_between(route.nodes[s], route.nodes[s + 1]);
      IDDE_ASSERT(l != kNoLink, "route uses a missing link");
      flow.links.push_back(l);
    }
    active.push_back(std::move(flow));
  };

  double now = 0.0;
  while (!active.empty() || !queue.empty()) {
    if (active.empty()) now = std::max(now, queue.top().time);
    while (!queue.empty() && queue.top().time <= now) {
      const Attempt attempt = queue.top();
      queue.pop();
      start_attempt(attempt.record, now);
    }
    if (active.empty()) continue;  // next queue entry re-anchors `now`

    assign_max_min_rates(active, capacities);
    ++result.rate_recomputations;

    double dt = std::numeric_limits<double>::infinity();
    for (const ActiveFlow& flow : active) {
      IDDE_ASSERT(flow.rate_mbps > 0.0, "starved flow");
      dt = std::min(dt, flow.remaining_mb / flow.rate_mbps);
    }
    if (!queue.empty()) dt = std::min(dt, queue.top().time - now);
    // Stop at the next edge-availability change so in-flight flows can be
    // validated against the new epoch.
    const double next_epoch = plan.next_edge_change_after(now);
    const bool epoch_event = next_epoch - now <= dt;
    if (epoch_event) dt = next_epoch - now;

    for (ActiveFlow& flow : active) flow.remaining_mb -= flow.rate_mbps * dt;
    now += dt;

    for (std::size_t f = 0; f < active.size();) {
      if (active[f].remaining_mb <= 1e-9) {
        result.flows[active[f].record_index].completion_s = now;
        active[f] = active.back();
        active.pop_back();
      } else {
        ++f;
      }
    }

    if (epoch_event) {
      // Abort flows whose path died; they retry with capped exponential
      // backoff and re-resolve from scratch (possibly to another replica
      // or the cloud).
      for (std::size_t f = 0; f < active.size();) {
        bool dead = false;
        for (const std::size_t l : active[f].links) {
          if (!plan.server_up(links_[l].a, now) ||
              !plan.server_up(links_[l].b, now) ||
              !plan.link_up(links_[l].a, links_[l].b, now)) {
            dead = true;
            break;
          }
        }
        if (!dead) {
          ++f;
          continue;
        }
        IDDE_OBS_COUNT("des.epoch_aborts_total", 1);
        FlowRecord& record = result.flows[active[f].record_index];
        ++record.retries;
        const double backoff = std::min(
            options_.retry_backoff_s *
                std::ldexp(1.0, static_cast<int>(record.retries) - 1),
            options_.retry_backoff_max_s);
        queue.push(Attempt{now + backoff, active[f].record_index});
        active[f] = active.back();
        active.pop_back();
      }
    }
  }

  finalize(result);
  return result;
}

void FlowLevelSimulator::finalize(FlowSimResult& result, double deadline_s,
                                  double window_s) {
  std::vector<double> durations_ms;
  durations_ms.reserve(result.flows.size());
  std::array<std::vector<double>, core::kFallbackTiers> tier_durations_ms;
  double makespan = 0.0;
  std::size_t first_try_primary = 0;
  double queue_wait_s_sum = 0.0;
  result.qos.offered = result.flows.size();
  for (FlowRecord& record : result.flows) {
    if (record.outcome == FlowOutcome::kShed) {
      ++result.qos.shed;
      continue;
    }
    if (record.outcome == FlowOutcome::kRejected) {
      ++result.qos.rejected;
      continue;
    }
    ++result.qos.admitted;
    const double duration_ms = record.duration_s() * 1e3;
    durations_ms.push_back(duration_ms);
    tier_durations_ms[static_cast<std::size_t>(record.tier)].push_back(
        duration_ms);
    makespan = std::max(makespan, record.completion_s);
    queue_wait_s_sum += record.queue_wait_s;
    if (record.local_hit) ++result.local_hits;
    if (record.from_cloud) ++result.cloud_fetches;
    if (record.forced_cloud) ++result.forced_cloud_fetches;
    result.retry_count += record.retries;
    ++result.tier_counts[static_cast<std::size_t>(record.tier)];
    if (record.tier == core::FallbackTier::kPrimary && record.retries == 0) {
      ++first_try_primary;
    }
    record.deadline_missed =
        deadline_s > 0.0 && record.duration_s() > deadline_s;
    if (record.deadline_missed) {
      ++result.qos.deadline_misses;
    } else {
      ++result.qos.goodput_flows;
    }
  }
  IDDE_ASSERT(result.qos.admitted + result.qos.shed + result.qos.rejected ==
                  result.qos.offered,
              "overload accounting leak: admitted + shed + rejected != "
              "offered");
  if (!durations_ms.empty()) {
    result.mean_duration_ms = util::mean_of(durations_ms);
    result.p95_duration_ms = util::percentile(durations_ms, 95.0);
    result.p99_duration_ms = util::percentile(durations_ms, 99.0);
    result.max_duration_ms =
        *std::max_element(durations_ms.begin(), durations_ms.end());
    result.availability = static_cast<double>(first_try_primary) /
                          static_cast<double>(durations_ms.size());
    result.qos.mean_queue_wait_ms =
        queue_wait_s_sum / static_cast<double>(durations_ms.size()) * 1e3;
  }
  result.makespan_s = makespan;
  for (std::size_t t = 0; t < core::kFallbackTiers; ++t) {
    if (tier_durations_ms[t].empty()) continue;
    result.qos.tier_p50_ms[t] = util::percentile(tier_durations_ms[t], 50.0);
    result.qos.tier_p99_ms[t] = util::percentile(tier_durations_ms[t], 99.0);
  }
  // Throughput rates are normalised by the offered-load window so they stay
  // comparable across load multipliers; makespan is the closed-loop proxy.
  const double period = window_s > 0.0 ? window_s : makespan;
  if (period > 0.0) {
    result.qos.goodput_rps =
        static_cast<double>(result.qos.goodput_flows) / period;
    result.qos.offered_rps =
        static_cast<double>(result.qos.offered) / period;
  }

  IDDE_OBS_COUNT("des.runs_total", 1);
  IDDE_OBS_COUNT("des.flows_total", result.flows.size());
  IDDE_OBS_COUNT("des.retries_total", result.retry_count);
  IDDE_OBS_COUNT("des.forced_cloud_total", result.forced_cloud_fetches);
  IDDE_OBS_COUNT("des.local_hits_total", result.local_hits);
  IDDE_OBS_COUNT("des.cloud_fetches_total", result.cloud_fetches);
  IDDE_OBS_COUNT("des.rate_recomputations_total", result.rate_recomputations);
  IDDE_OBS_COUNT("qos.offered_total", result.qos.offered);
  IDDE_OBS_COUNT("qos.shed_total", result.qos.shed);
  IDDE_OBS_COUNT("qos.rejected_total", result.qos.rejected);
  IDDE_OBS_COUNT("qos.deadline_misses_total", result.qos.deadline_misses);
  IDDE_OBS_COUNT("qos.retries_denied_total", result.qos.retries_denied);
  IDDE_OBS_COUNT("qos.breaker_opens_total", result.qos.breaker_opens);
#if IDDE_OBS
  if (obs::enabled()) {
    obs::Histogram& duration =
        obs::MetricsRegistry::global().histogram("des.flow_duration_ms");
    for (const double ms : durations_ms) duration.record(ms);
    static constexpr const char* kTierHistograms[core::kFallbackTiers] = {
        "qos.tier_duration_ms.primary", "qos.tier_duration_ms.replica",
        "qos.tier_duration_ms.cloud"};
    for (std::size_t t = 0; t < core::kFallbackTiers; ++t) {
      if (tier_durations_ms[t].empty()) continue;
      obs::Histogram& tier_hist =
          obs::MetricsRegistry::global().histogram(kTierHistograms[t]);
      for (const double ms : tier_durations_ms[t]) tier_hist.record(ms);
    }
  }
#endif
}

}  // namespace idde::des
