#include "net/shortest_path.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace idde::net {

std::vector<double> dijkstra(const Graph& graph, std::size_t source) {
  IDDE_EXPECTS(source < graph.node_count());
  std::vector<double> dist(graph.node_count(), kUnreachable);
  dist[source] = 0.0;
  using Item = std::pair<double, std::size_t>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  queue.emplace(0.0, source);
  while (!queue.empty()) {
    const auto [d, node] = queue.top();
    queue.pop();
    if (d > dist[node]) continue;  // stale entry
    for (const Neighbor& nb : graph.neighbors(node)) {
      const double candidate = d + nb.weight;
      if (candidate < dist[nb.node]) {
        dist[nb.node] = candidate;
        queue.emplace(candidate, nb.node);
      }
    }
  }
  return dist;
}

CostMatrix::CostMatrix(const Graph& graph) : n_(graph.node_count()) {
  costs_.resize(n_ * n_, kUnreachable);
  for (std::size_t source = 0; source < n_; ++source) {
    const auto dist = dijkstra(graph, source);
    std::copy(dist.begin(), dist.end(), costs_.begin() + source * n_);
  }
}

Route shortest_route(const Graph& graph, std::size_t from, std::size_t to) {
  IDDE_EXPECTS(from < graph.node_count());
  IDDE_EXPECTS(to < graph.node_count());
  // Dijkstra with parent tracking.
  std::vector<double> dist(graph.node_count(), kUnreachable);
  std::vector<std::size_t> parent(graph.node_count(),
                                  static_cast<std::size_t>(-1));
  dist[from] = 0.0;
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  queue.emplace(0.0, from);
  while (!queue.empty()) {
    const auto [d, node] = queue.top();
    queue.pop();
    if (d > dist[node]) continue;
    if (node == to) break;
    for (const Neighbor& nb : graph.neighbors(node)) {
      const double candidate = d + nb.weight;
      if (candidate < dist[nb.node]) {
        dist[nb.node] = candidate;
        parent[nb.node] = node;
        queue.emplace(candidate, nb.node);
      }
    }
  }
  Route route;
  if (dist[to] == kUnreachable) return route;
  route.cost = dist[to];
  for (std::size_t node = to;; node = parent[node]) {
    route.nodes.push_back(node);
    if (node == from) break;
  }
  std::reverse(route.nodes.begin(), route.nodes.end());
  return route;
}

std::vector<double> floyd_warshall(const Graph& graph) {
  const std::size_t n = graph.node_count();
  std::vector<double> dist(n * n, kUnreachable);
  for (std::size_t i = 0; i < n; ++i) {
    dist[i * n + i] = 0.0;
    for (const Neighbor& nb : graph.neighbors(i)) {
      dist[i * n + nb.node] = std::min(dist[i * n + nb.node], nb.weight);
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double dik = dist[i * n + k];
      if (dik == kUnreachable) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double through = dik + dist[k * n + j];
        if (through < dist[i * n + j]) dist[i * n + j] = through;
      }
    }
  }
  return dist;
}

}  // namespace idde::net
