// Figure 1 — "End-to-end network latency test. The results are collected
// hourly and averaged over a week": edge server vs AWS Singapore / London /
// Frankfurt, replayed through the WAN RTT profile (see DESIGN.md §5 for the
// measurement-to-model substitution).
#include <cstdio>

#include "net/wan_profile.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

int main() {
  using namespace idde;
  const auto seed =
      static_cast<std::uint64_t>(util::env_int_or("IDDE_SEED", 20220301));
  std::printf(
      "Fig. 1: End-to-end network latency, hourly samples averaged over one "
      "week (seed %llu)\n",
      static_cast<unsigned long long>(seed));

  util::TextTable table({"target", "mean RTT (ms)", "min", "max"});
  for (const net::WeeklyAverage& row : net::run_figure1_protocol(seed)) {
    table.start_row()
        .add(row.name)
        .add(row.mean_rtt_ms)
        .add(row.min_rtt_ms)
        .add(row.max_rtt_ms);
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts(
      "\nPaper shape: Edge-to-Edge RTT is a few ms; Edge-to-Cloud is "
      "~90-250 ms depending on region.");
  return 0;
}
