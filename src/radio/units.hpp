// Power unit conversions. The paper quotes noise as -174 dBm; all internal
// arithmetic is in watts.
#pragma once

#include <cmath>

namespace idde::radio {

[[nodiscard]] inline double dbm_to_watts(double dbm) noexcept {
  return std::pow(10.0, (dbm - 30.0) / 10.0);
}

[[nodiscard]] inline double watts_to_dbm(double watts) noexcept {
  return 10.0 * std::log10(watts) + 30.0;
}

/// Additive white Gaussian noise floor used throughout the evaluation
/// (-174 dBm, per Section 4.2).
inline constexpr double kNoiseDbm = -174.0;

[[nodiscard]] inline double default_noise_watts() noexcept {
  return dbm_to_watts(kNoiseDbm);
}

}  // namespace idde::radio
