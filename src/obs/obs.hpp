// Umbrella header + instrumentation macros for the telemetry subsystem.
//
// Instrumented code uses only these macros (or ScopedSpan directly where
// the elapsed time is itself a result). Contract:
//   IDDE_OBS=0 build   — macros expand to nothing; zero code, zero cost.
//   IDDE_OBS=1 build   — each hit is one relaxed atomic load + branch when
//                        runtime-disabled (the default), and a handful of
//                        relaxed atomic ops when enabled. The metric handle
//                        is resolved through the registry once per call
//                        site (function-local static) — never per event.
// Instrumentation must be pure observation: it may not touch rng state,
// alter iteration order, or round differently — solver outputs are required
// to be bit-identical with telemetry on, off, and compiled out.
#pragma once

#include "obs/config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace idde::obs {

/// Everything in one scrape: {"counters":…, "gauges":…, "histograms":…,
/// "spans":…} — the `telemetry` block bench reports embed.
[[nodiscard]] util::Json telemetry_json();

/// Zeroes the global registry and tracer (test isolation and per-run
/// scoping in tools). Call only at quiescent points.
void reset_all();

}  // namespace idde::obs

#if IDDE_OBS

#define IDDE_OBS_CONCAT_IMPL(a, b) a##b
#define IDDE_OBS_CONCAT(a, b) IDDE_OBS_CONCAT_IMPL(a, b)

/// Adds `n` to the named global counter.
#define IDDE_OBS_COUNT(name, n)                                             \
  do {                                                                      \
    if (::idde::obs::enabled()) {                                           \
      static ::idde::obs::Counter& IDDE_OBS_CONCAT(idde_obs_counter_,       \
                                                   __LINE__) =              \
          ::idde::obs::MetricsRegistry::global().counter(name);             \
      IDDE_OBS_CONCAT(idde_obs_counter_, __LINE__).add(n);                  \
    }                                                                       \
  } while (0)

/// Sets the named global gauge to `v`.
#define IDDE_OBS_GAUGE_SET(name, v)                                         \
  do {                                                                      \
    if (::idde::obs::enabled()) {                                           \
      static ::idde::obs::Gauge& IDDE_OBS_CONCAT(idde_obs_gauge_,           \
                                                 __LINE__) =                \
          ::idde::obs::MetricsRegistry::global().gauge(name);               \
      IDDE_OBS_CONCAT(idde_obs_gauge_, __LINE__)                            \
          .set(static_cast<std::int64_t>(v));                               \
    }                                                                       \
  } while (0)

/// Records `v` into the named global histogram.
#define IDDE_OBS_HISTOGRAM(name, v)                                         \
  do {                                                                      \
    if (::idde::obs::enabled()) {                                           \
      static ::idde::obs::Histogram& IDDE_OBS_CONCAT(idde_obs_histogram_,   \
                                                     __LINE__) =            \
          ::idde::obs::MetricsRegistry::global().histogram(name);           \
      IDDE_OBS_CONCAT(idde_obs_histogram_, __LINE__)                        \
          .record(static_cast<double>(v));                                  \
    }                                                                       \
  } while (0)

/// Opens a phase span covering the rest of the enclosing scope.
#define IDDE_OBS_SPAN(name) \
  const ::idde::obs::ScopedSpan IDDE_OBS_CONCAT(idde_obs_span_, __LINE__)(name)

/// As IDDE_OBS_SPAN with a detail string (evaluated only when recording —
/// wrap anything costly in the trace_enabled() check yourself).
#define IDDE_OBS_SPAN_ARGS(name, args_expr)                  \
  const ::idde::obs::ScopedSpan IDDE_OBS_CONCAT(             \
      idde_obs_span_, __LINE__)(name, ::idde::obs::enabled() \
                                          ? (args_expr)      \
                                          : std::string())

#else  // IDDE_OBS == 0

// The sizeof operands keep the arguments "used" (so a variable counted
// only for telemetry does not warn) without evaluating them — a disabled
// build emits no code for any of these.
#define IDDE_OBS_COUNT(name, n)                \
  do {                                         \
    (void)sizeof(name), (void)sizeof((n));     \
  } while (0)
#define IDDE_OBS_GAUGE_SET(name, v)            \
  do {                                         \
    (void)sizeof(name), (void)sizeof((v));     \
  } while (0)
#define IDDE_OBS_HISTOGRAM(name, v)            \
  do {                                         \
    (void)sizeof(name), (void)sizeof((v));     \
  } while (0)
#define IDDE_OBS_SPAN(name)                    \
  do {                                         \
    (void)sizeof(name);                        \
  } while (0)
#define IDDE_OBS_SPAN_ARGS(name, args_expr)    \
  do {                                         \
    (void)sizeof(name), (void)sizeof((args_expr)); \
  } while (0)

#endif  // IDDE_OBS
