// ProblemInstance: one fully materialised IDDE problem — servers, users,
// data catalogue, requests, the radio environment and the delivery-latency
// model. Instances are immutable once built; every solver consumes them
// through const references, so repetitions can share an instance across
// threads safely.
#pragma once

#include <memory>
#include <vector>

#include "model/entities.hpp"
#include "model/request_matrix.hpp"
#include "net/graph.hpp"
#include "net/latency.hpp"
#include "radio/interference.hpp"

namespace idde::model {

class ProblemInstance {
 public:
  ProblemInstance(std::vector<EdgeServer> servers, std::vector<User> users,
                  std::vector<DataItem> data, RequestMatrix requests,
                  net::Graph graph, net::DeliveryLatencyModel latency,
                  radio::RadioEnvironment radio_env);

  [[nodiscard]] std::size_t server_count() const noexcept {
    return servers_.size();
  }
  [[nodiscard]] std::size_t user_count() const noexcept {
    return users_.size();
  }
  [[nodiscard]] std::size_t data_count() const noexcept {
    return data_.size();
  }

  [[nodiscard]] const EdgeServer& server(ServerId i) const {
    return servers_[i];
  }
  [[nodiscard]] const User& user(UserId j) const { return users_[j]; }
  [[nodiscard]] const DataItem& data(DataId k) const { return data_[k]; }

  [[nodiscard]] const std::vector<EdgeServer>& servers() const noexcept {
    return servers_;
  }
  [[nodiscard]] const std::vector<User>& users() const noexcept {
    return users_;
  }
  [[nodiscard]] const std::vector<DataItem>& data_items() const noexcept {
    return data_;
  }

  [[nodiscard]] const RequestMatrix& requests() const noexcept {
    return requests_;
  }
  [[nodiscard]] const net::Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const net::DeliveryLatencyModel& latency() const noexcept {
    return latency_;
  }
  [[nodiscard]] const radio::RadioEnvironment& radio_env() const noexcept {
    return radio_env_;
  }

  /// V_j: servers covering user j (ascending ids).
  [[nodiscard]] const std::vector<ServerId>& covering_servers(UserId j) const {
    return radio_env_.covering_servers[j];
  }
  /// U_i: users covered by server i (ascending ids).
  [[nodiscard]] const std::vector<UserId>& covered_users(ServerId i) const {
    return covered_users_[i];
  }

  /// Total reserved storage sum_i A_i (MB).
  [[nodiscard]] double total_storage_mb() const noexcept {
    return total_storage_mb_;
  }
  /// max_k s_k (MB); 0 for an empty catalogue.
  [[nodiscard]] double max_data_size_mb() const noexcept {
    return max_data_size_mb_;
  }

 private:
  std::vector<EdgeServer> servers_;
  std::vector<User> users_;
  std::vector<DataItem> data_;
  RequestMatrix requests_;
  net::Graph graph_;
  net::DeliveryLatencyModel latency_;
  radio::RadioEnvironment radio_env_;
  std::vector<std::vector<UserId>> covered_users_;
  double total_storage_mb_ = 0.0;
  double max_data_size_mb_ = 0.0;
};

}  // namespace idde::model
