"""Rule registry.

A rule pack module exposes:
  RULES            {rule_id: one-line description}
  scan(sf, cfg)    per-file pass -> (list[Finding], facts dict) — runs in
                   worker processes, must not touch global state;
and optionally:
  global_scan(reports, cfg) -> list[Finding] — runs once after every file
                   has been scanned, for whole-project analyses (the lock
                   graph is the canonical example).

Adding a rule: pick the pack (or add one), register the id in RULES, emit
Findings with a line-number-free `key`, add a fixture with the violation
plus its suppressed/baselined variants, and regenerate the golden output
(tools/analyze/tests/run_selftests.py --regen). DESIGN.md section 14 keeps
the catalog.
"""

from __future__ import annotations

from . import concurrency, determinism, legacy, robustness, units

PACKS = (legacy, concurrency, determinism, robustness, units)

ALL_RULES: dict[str, str] = {}
for _pack in PACKS:
    for _rule, _desc in _pack.RULES.items():
        if _rule in ALL_RULES:
            raise RuntimeError(f"duplicate rule id: {_rule}")
        ALL_RULES[_rule] = _desc
