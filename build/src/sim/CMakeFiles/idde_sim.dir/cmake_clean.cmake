file(REMOVE_RECURSE
  "CMakeFiles/idde_sim.dir/paper.cpp.o"
  "CMakeFiles/idde_sim.dir/paper.cpp.o.d"
  "CMakeFiles/idde_sim.dir/report.cpp.o"
  "CMakeFiles/idde_sim.dir/report.cpp.o.d"
  "CMakeFiles/idde_sim.dir/runner.cpp.o"
  "CMakeFiles/idde_sim.dir/runner.cpp.o.d"
  "CMakeFiles/idde_sim.dir/scenario.cpp.o"
  "CMakeFiles/idde_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/idde_sim.dir/sweep.cpp.o"
  "CMakeFiles/idde_sim.dir/sweep.cpp.o.d"
  "libidde_sim.a"
  "libidde_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idde_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
