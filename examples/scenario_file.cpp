// Declarative scenarios: read an InstanceParams JSON file (or write a
// template), build the instance, and compare IDDE-G against the strongest
// baseline. Shows the sim::params_{to,from}_json API that external tooling
// uses to drive the simulator.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/idde_g.hpp"
#include "core/metrics.hpp"
#include "baselines/cdp.hpp"
#include "model/instance_builder.hpp"
#include "sim/paper.hpp"
#include "sim/scenario.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace idde;

  std::string file;
  bool emit_template = false;
  std::size_t seed = 1;
  util::CliParser cli(
      "scenario_file: build an instance from a JSON scenario and solve it");
  cli.add_string("file", &file, "scenario JSON path (empty = defaults)");
  cli.add_flag("emit-template", &emit_template,
               "print the default scenario JSON and exit");
  cli.add_size("seed", &seed, "instance seed");
  if (!cli.parse(argc, argv)) return 0;

  if (emit_template) {
    std::puts(sim::params_to_string(sim::paper_default_params()).c_str());
    return 0;
  }

  model::InstanceParams params = sim::paper_default_params();
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      params = sim::params_from_string(buffer.str());
    } catch (const util::JsonError& error) {
      std::fprintf(stderr, "bad scenario file: %s\n", error.what());
      return 1;
    }
    std::printf("loaded scenario from %s\n", file.c_str());
  } else {
    std::puts("no --file given; using the paper's Section 4.2 defaults");
  }

  const model::ProblemInstance instance =
      model::make_instance(params, static_cast<std::uint64_t>(seed));
  std::printf("instance: N=%zu M=%zu K=%zu density=%.1f\n\n",
              instance.server_count(), instance.user_count(),
              instance.data_count(), params.density);

  util::Rng rng(static_cast<std::uint64_t>(seed));
  const core::Strategy ours = core::IddeG().solve(instance, rng);
  const core::Strategy theirs = baselines::Cdp().solve(instance, rng);
  const auto mo = core::evaluate(instance, ours);
  const auto mt = core::evaluate(instance, theirs);
  std::printf("IDDE-G: R_avg %.2f MB/s, L_avg %.2f ms\n", mo.avg_rate_mbps,
              mo.avg_latency_ms);
  std::printf("CDP   : R_avg %.2f MB/s, L_avg %.2f ms\n", mt.avg_rate_mbps,
              mt.avg_latency_ms);
  return 0;
}
