// Request matrix, instance builder, instance invariants, validation and the
// JSON scenario round-trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "model/instance_builder.hpp"
#include "model/request_matrix.hpp"
#include "model/validation.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace idde;
using model::InstanceParams;
using model::ProblemInstance;
using model::RequestMatrix;

InstanceParams small_params() {
  InstanceParams p;
  p.server_count = 10;
  p.user_count = 40;
  p.data_count = 4;
  return p;
}

TEST(RequestMatrix, AddAndQuery) {
  RequestMatrix m(3, 2);
  EXPECT_FALSE(m.requests(0, 0));
  m.add_request(0, 0);
  m.add_request(2, 1);
  EXPECT_TRUE(m.requests(0, 0));
  EXPECT_TRUE(m.requests(2, 1));
  EXPECT_FALSE(m.requests(1, 0));
  EXPECT_EQ(m.total_requests(), 2u);
}

TEST(RequestMatrix, AddIsIdempotent) {
  RequestMatrix m(2, 2);
  m.add_request(1, 1);
  m.add_request(1, 1);
  EXPECT_EQ(m.total_requests(), 1u);
  EXPECT_EQ(m.items_of(1).size(), 1u);
  EXPECT_EQ(m.users_of(1).size(), 1u);
}

TEST(RequestMatrix, BidirectionalIndexesAgree) {
  RequestMatrix m(4, 3);
  m.add_request(0, 1);
  m.add_request(1, 1);
  m.add_request(1, 2);
  m.add_request(3, 0);
  std::size_t total_by_user = 0;
  for (std::size_t j = 0; j < 4; ++j) total_by_user += m.items_of(j).size();
  std::size_t total_by_item = 0;
  for (std::size_t k = 0; k < 3; ++k) total_by_item += m.users_of(k).size();
  EXPECT_EQ(total_by_user, m.total_requests());
  EXPECT_EQ(total_by_item, m.total_requests());
  EXPECT_EQ(m.users_of(1).size(), 2u);
}

TEST(InstanceBuilder, ShapesMatchParams) {
  const ProblemInstance inst = model::make_instance(small_params(), 1);
  EXPECT_EQ(inst.server_count(), 10u);
  EXPECT_EQ(inst.user_count(), 40u);
  EXPECT_EQ(inst.data_count(), 4u);
  EXPECT_EQ(inst.graph().node_count(), 10u);
  EXPECT_EQ(inst.radio_env().user_count, 40u);
}

TEST(InstanceBuilder, DeterministicPerSeed) {
  const InstanceParams p = small_params();
  const ProblemInstance a = model::make_instance(p, 7);
  const ProblemInstance b = model::make_instance(p, 7);
  for (std::size_t i = 0; i < a.server_count(); ++i) {
    EXPECT_EQ(a.server(i).position, b.server(i).position);
    EXPECT_DOUBLE_EQ(a.server(i).storage_mb, b.server(i).storage_mb);
  }
  for (std::size_t j = 0; j < a.user_count(); ++j) {
    EXPECT_EQ(a.user(j).position, b.user(j).position);
    EXPECT_DOUBLE_EQ(a.user(j).power_watts, b.user(j).power_watts);
    EXPECT_EQ(a.requests().items_of(j).size(),
              b.requests().items_of(j).size());
  }
  EXPECT_EQ(a.radio_env().gain, b.radio_env().gain);
}

TEST(InstanceBuilder, DifferentSeedsDiffer) {
  const InstanceParams p = small_params();
  const ProblemInstance a = model::make_instance(p, 1);
  const ProblemInstance b = model::make_instance(p, 2);
  bool any_difference = false;
  for (std::size_t j = 0; j < a.user_count() && !any_difference; ++j) {
    any_difference = !(a.user(j).position == b.user(j).position);
  }
  EXPECT_TRUE(any_difference);
}

TEST(InstanceBuilder, ValuesWithinPaperRanges) {
  const ProblemInstance inst = model::make_instance(small_params(), 3);
  for (const model::EdgeServer& s : inst.servers()) {
    EXPECT_GE(s.storage_mb, 30.0);
    EXPECT_LE(s.storage_mb, 300.0);
    EXPECT_GE(s.coverage_radius_m, 100.0);
    EXPECT_LE(s.coverage_radius_m, 200.0);
  }
  for (const model::User& u : inst.users()) {
    EXPECT_GE(u.power_watts, 1.0);
    EXPECT_LE(u.power_watts, 5.0);
    EXPECT_GE(u.max_rate_mbps, 150.0);
    EXPECT_LE(u.max_rate_mbps, 250.0);
  }
  const std::set<double> allowed{30.0, 60.0, 90.0};
  for (const model::DataItem& d : inst.data_items()) {
    EXPECT_TRUE(allowed.contains(d.size_mb));
  }
}

TEST(InstanceBuilder, EveryUserRequestsSomething) {
  const ProblemInstance inst = model::make_instance(small_params(), 4);
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    EXPECT_GE(inst.requests().items_of(j).size(), 1u);
    EXPECT_LE(inst.requests().items_of(j).size(), 2u);
  }
}

TEST(InstanceBuilder, CoverageSetsSortedAndGeometricallyCorrect) {
  const ProblemInstance inst = model::make_instance(small_params(), 5);
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    const auto& covering = inst.covering_servers(j);
    EXPECT_TRUE(std::is_sorted(covering.begin(), covering.end()));
    // Exactness both ways against brute force.
    for (std::size_t i = 0; i < inst.server_count(); ++i) {
      const bool geometric =
          geo::distance_m(inst.server(i).position, inst.user(j).position) <=
          inst.server(i).coverage_radius_m;
      const bool listed =
          std::binary_search(covering.begin(), covering.end(), i);
      EXPECT_EQ(geometric, listed) << "user " << j << " server " << i;
    }
  }
}

TEST(InstanceBuilder, CoveredUsersIsInverseOfCoveringServers) {
  const ProblemInstance inst = model::make_instance(small_params(), 6);
  for (std::size_t i = 0; i < inst.server_count(); ++i) {
    for (const std::size_t j : inst.covered_users(i)) {
      const auto& covering = inst.covering_servers(j);
      EXPECT_TRUE(std::binary_search(covering.begin(), covering.end(), i));
    }
  }
}

TEST(InstanceBuilder, MostUsersCovered) {
  // The coverage-aware sub-sampling should cover (nearly) all users at the
  // paper's default scale.
  InstanceParams p;
  p.server_count = 30;
  p.user_count = 200;
  const ProblemInstance inst = model::make_instance(p, 7);
  const model::CoverageStats stats = model::coverage_stats(inst);
  EXPECT_EQ(stats.uncovered_users, 0u);
  EXPECT_GE(stats.mean_coverage, 1.0);
}

TEST(InstanceBuilder, GraphConnectedAcrossDensities) {
  for (const double density : {1.0, 1.8, 3.0}) {
    InstanceParams p = small_params();
    p.density = density;
    const ProblemInstance inst = model::make_instance(p, 8);
    EXPECT_TRUE(inst.graph().is_connected());
  }
}

TEST(InstanceBuilder, AggregatesComputed) {
  const ProblemInstance inst = model::make_instance(small_params(), 9);
  double total = 0.0;
  for (const auto& s : inst.servers()) total += s.storage_mb;
  EXPECT_DOUBLE_EQ(inst.total_storage_mb(), total);
  double mx = 0.0;
  for (const auto& d : inst.data_items()) mx = std::max(mx, d.size_mb);
  EXPECT_DOUBLE_EQ(inst.max_data_size_mb(), mx);
}

TEST(Validation, CleanInstancePasses) {
  const ProblemInstance inst = model::make_instance(small_params(), 10);
  EXPECT_TRUE(model::validate_instance(inst).empty());
}

TEST(Validation, CoverageStatsShape) {
  const ProblemInstance inst = model::make_instance(small_params(), 11);
  const model::CoverageStats stats = model::coverage_stats(inst);
  EXPECT_LE(stats.uncovered_users, inst.user_count());
  EXPECT_GE(stats.max_coverage, 1u);
}

TEST(Scenario, JsonRoundTripPreservesEverything) {
  InstanceParams p = small_params();
  p.density = 2.2;
  p.channels_per_server = 4;
  p.zipf_exponent = 1.1;
  p.data_size_choices_mb = {10.0, 20.0};
  p.eua.area_side_m = 1500.0;
  const std::string text = sim::params_to_string(p);
  const InstanceParams q = sim::params_from_string(text);
  EXPECT_EQ(q.server_count, p.server_count);
  EXPECT_EQ(q.user_count, p.user_count);
  EXPECT_EQ(q.data_count, p.data_count);
  EXPECT_DOUBLE_EQ(q.density, p.density);
  EXPECT_EQ(q.channels_per_server, p.channels_per_server);
  EXPECT_DOUBLE_EQ(q.zipf_exponent, p.zipf_exponent);
  EXPECT_EQ(q.data_size_choices_mb, p.data_size_choices_mb);
  EXPECT_DOUBLE_EQ(q.eua.area_side_m, p.eua.area_side_m);
}

TEST(Scenario, PartialJsonKeepsDefaults) {
  const InstanceParams defaults;
  const InstanceParams q =
      sim::params_from_string(R"({"server_count": 12})");
  EXPECT_EQ(q.server_count, 12u);
  EXPECT_EQ(q.user_count, defaults.user_count);
  EXPECT_DOUBLE_EQ(q.cloud_speed_mbps, defaults.cloud_speed_mbps);
}

TEST(Scenario, UnknownKeysIgnored) {
  const InstanceParams q =
      sim::params_from_string(R"({"bogus": 1, "user_count": 33})");
  EXPECT_EQ(q.user_count, 33u);
}

TEST(Scenario, RoundTrippedParamsBuildIdenticalInstances) {
  const InstanceParams p = small_params();
  const InstanceParams q =
      sim::params_from_string(sim::params_to_string(p));
  const ProblemInstance a = model::make_instance(p, 99);
  const ProblemInstance b = model::make_instance(q, 99);
  EXPECT_EQ(a.radio_env().gain, b.radio_env().gain);
  EXPECT_DOUBLE_EQ(a.total_storage_mb(), b.total_storage_mb());
}

// Sweep across the paper's N/M/K grid: instances must always validate.
struct GridParam {
  std::size_t n, m, k;
};

class InstanceGridTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(InstanceGridTest, BuildsValidInstances) {
  const auto [n, m] = GetParam();
  InstanceParams p;
  p.server_count = n;
  p.user_count = m;
  const ProblemInstance inst = model::make_instance(p, 1234 + n + m);
  EXPECT_TRUE(model::validate_instance(inst).empty());
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, InstanceGridTest,
                         ::testing::Combine(::testing::Values(20, 35, 50),
                                            ::testing::Values(50, 200, 350)));

}  // namespace
