file(REMOVE_RECURSE
  "CMakeFiles/fig7_time.dir/bench/fig7_time.cpp.o"
  "CMakeFiles/fig7_time.dir/bench/fig7_time.cpp.o.d"
  "bench/fig7_time"
  "bench/fig7_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
