file(REMOVE_RECURSE
  "CMakeFiles/city_scale.dir/city_scale.cpp.o"
  "CMakeFiles/city_scale.dir/city_scale.cpp.o.d"
  "city_scale"
  "city_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
