file(REMOVE_RECURSE
  "CMakeFiles/idde_dynamic.dir/churn.cpp.o"
  "CMakeFiles/idde_dynamic.dir/churn.cpp.o.d"
  "CMakeFiles/idde_dynamic.dir/migration.cpp.o"
  "CMakeFiles/idde_dynamic.dir/migration.cpp.o.d"
  "CMakeFiles/idde_dynamic.dir/mobility.cpp.o"
  "CMakeFiles/idde_dynamic.dir/mobility.cpp.o.d"
  "CMakeFiles/idde_dynamic.dir/simulation.cpp.o"
  "CMakeFiles/idde_dynamic.dir/simulation.cpp.o.d"
  "CMakeFiles/idde_dynamic.dir/world.cpp.o"
  "CMakeFiles/idde_dynamic.dir/world.cpp.o.d"
  "libidde_dynamic.a"
  "libidde_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idde_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
