// Shortest-path costs over the edge graph. Both a single-source Dijkstra and
// an all-pairs solver are provided; the all-pairs matrix backs Eq. (8)'s
// L_{k,o,i} lookups, which the greedy delivery phase evaluates millions of
// times.
#pragma once

#include <limits>
#include <vector>

#include "net/graph.hpp"

namespace idde::net {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Dijkstra from `source`; returns per-node cost (seconds-per-MB).
[[nodiscard]] std::vector<double> dijkstra(const Graph& graph,
                                           std::size_t source);

/// Dense all-pairs cost matrix (row-major, n*n). Runs n Dijkstras, which is
/// O(n (m + n) log n) — cheaper than Floyd–Warshall for the sparse
/// density*N-link topologies used here.
class CostMatrix {
 public:
  explicit CostMatrix(const Graph& graph);

  /// Seconds-per-MB of the cheapest route from `from` to `to`.
  [[nodiscard]] double cost(std::size_t from, std::size_t to) const {
    return costs_[from * n_ + to];
  }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

 private:
  std::size_t n_;
  std::vector<double> costs_;
};

/// Floyd–Warshall reference implementation (O(n^3)); used by tests as an
/// oracle against the Dijkstra-based CostMatrix.
[[nodiscard]] std::vector<double> floyd_warshall(const Graph& graph);

/// An explicit route: the node sequence of a cheapest path.
struct Route {
  double cost = kUnreachable;       ///< seconds-per-MB along the path
  std::vector<std::size_t> nodes;   ///< from .. to (empty if unreachable)

  [[nodiscard]] std::size_t hops() const noexcept {
    return nodes.empty() ? 0 : nodes.size() - 1;
  }
};

/// Reconstructs one cheapest route (migration reports use the hop count;
/// the metrics layers only need CostMatrix).
[[nodiscard]] Route shortest_route(const Graph& graph, std::size_t from,
                                   std::size_t to);

}  // namespace idde::net
