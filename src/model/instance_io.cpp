#include "model/instance_io.hpp"

#include <utility>

#include "net/graph_gen.hpp"
#include "util/assert.hpp"

namespace idde::model {

using util::Json;
using util::JsonArray;
using util::JsonObject;

Json instance_to_json(const ProblemInstance& instance) {
  JsonArray servers;
  for (const EdgeServer& s : instance.servers()) {
    servers.push_back(Json(JsonObject{
        {"x", Json(s.position.x)},
        {"y", Json(s.position.y)},
        {"radius_m", Json(s.coverage_radius_m)},
        {"storage_mb", Json(s.storage_mb)},
    }));
  }

  JsonArray users;
  for (const User& u : instance.users()) {
    users.push_back(Json(JsonObject{
        {"x", Json(u.position.x)},
        {"y", Json(u.position.y)},
        {"power_w", Json(u.power_watts)},
        {"max_rate_mbps", Json(u.max_rate_mbps)},
    }));
  }

  JsonArray data;
  for (const DataItem& d : instance.data_items()) {
    data.push_back(Json(JsonObject{{"size_mb", Json(d.size_mb)}}));
  }

  JsonArray requests;  // per user, the list of requested item ids
  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    JsonArray items;
    for (const std::size_t k : instance.requests().items_of(j)) {
      items.emplace_back(k);
    }
    requests.push_back(Json(std::move(items)));
  }

  // Undirected edge list reconstructed from the adjacency (from < to keeps
  // each edge once; parallel edges are preserved pairwise).
  JsonArray edges;
  for (std::size_t i = 0; i < instance.server_count(); ++i) {
    for (const net::Neighbor& nb : instance.graph().neighbors(i)) {
      if (i < nb.node) {
        edges.push_back(Json(JsonObject{
            {"from", Json(i)},
            {"to", Json(nb.node)},
            {"seconds_per_mb", Json(nb.weight)},
        }));
      }
    }
  }

  const auto& env = instance.radio_env();
  JsonArray gains;  // row-major N x M
  gains.reserve(env.gain.size());
  for (const double g : env.gain) gains.emplace_back(g);
  JsonArray bandwidth;
  for (const double b : env.bandwidth) bandwidth.emplace_back(b);

  return Json(JsonObject{
      {"format", Json("idde-instance-v1")},
      {"servers", Json(std::move(servers))},
      {"users", Json(std::move(users))},
      {"data", Json(std::move(data))},
      {"requests", Json(std::move(requests))},
      {"edges", Json(std::move(edges))},
      {"cloud_speed_mbps", Json(instance.latency().cloud_speed_mbps())},
      {"radio",
       Json(JsonObject{
           {"channels_per_server", Json(env.channels_per_server)},
           {"noise_watts", Json(env.noise_watts)},
           {"bandwidth_mbps", Json(std::move(bandwidth))},
           {"gain", Json(std::move(gains))},
       })},
  });
}

ProblemInstance instance_from_json(const Json& json) {
  IDDE_ASSERT(json.string_or("format", "") == "idde-instance-v1",
              "unknown instance format");

  std::vector<EdgeServer> servers;
  for (const Json& s : json.at("servers").as_array()) {
    servers.push_back(EdgeServer{
        .position = {s.at("x").as_number(), s.at("y").as_number()},
        .coverage_radius_m = s.at("radius_m").as_number(),
        .storage_mb = s.at("storage_mb").as_number(),
    });
  }

  std::vector<User> users;
  for (const Json& u : json.at("users").as_array()) {
    users.push_back(User{
        .position = {u.at("x").as_number(), u.at("y").as_number()},
        .power_watts = u.at("power_w").as_number(),
        .max_rate_mbps = u.at("max_rate_mbps").as_number(),
    });
  }

  std::vector<DataItem> data;
  for (const Json& d : json.at("data").as_array()) {
    data.push_back(DataItem{.size_mb = d.at("size_mb").as_number()});
  }

  RequestMatrix requests(users.size(), data.size());
  const auto& request_rows = json.at("requests").as_array();
  IDDE_ASSERT(request_rows.size() == users.size(),
              "request rows / user count mismatch");
  for (std::size_t j = 0; j < request_rows.size(); ++j) {
    for (const Json& item : request_rows[j].as_array()) {
      requests.add_request(j, static_cast<std::size_t>(item.as_int()));
    }
  }

  std::vector<net::Edge> edges;
  for (const Json& e : json.at("edges").as_array()) {
    edges.push_back(net::Edge{
        static_cast<std::size_t>(e.at("from").as_int()),
        static_cast<std::size_t>(e.at("to").as_int()),
        e.at("seconds_per_mb").as_number(),
    });
  }
  net::Graph graph(servers.size(), edges);
  net::DeliveryLatencyModel latency(net::CostMatrix(graph),
                                    json.at("cloud_speed_mbps").as_number());

  const Json& radio_json = json.at("radio");
  radio::RadioEnvironment env;
  env.server_count = servers.size();
  env.user_count = users.size();
  env.channels_per_server = static_cast<std::size_t>(
      radio_json.at("channels_per_server").as_int());
  env.noise_watts = radio_json.at("noise_watts").as_number();
  for (const Json& b : radio_json.at("bandwidth_mbps").as_array()) {
    env.bandwidth.push_back(b.as_number());
  }
  for (const Json& g : radio_json.at("gain").as_array()) {
    env.gain.push_back(g.as_number());
  }
  env.power.reserve(users.size());
  for (const User& u : users) env.power.push_back(u.power_watts);

  // Coverage is geometric; recompute rather than store.
  env.covering_servers.resize(users.size());
  for (std::size_t j = 0; j < users.size(); ++j) {
    for (std::size_t i = 0; i < servers.size(); ++i) {
      if (geo::distance(servers[i].position, users[j].position) <=
          servers[i].coverage_radius_m) {
        env.covering_servers[j].push_back(i);
      }
    }
  }

  return ProblemInstance(std::move(servers), std::move(users), std::move(data),
                         std::move(requests), std::move(graph),
                         std::move(latency), std::move(env));
}

std::string instance_to_string(const ProblemInstance& instance, int indent) {
  return instance_to_json(instance).dump(indent);
}

ProblemInstance instance_from_string(const std::string& text) {
  return instance_from_json(Json::parse(text));
}

}  // namespace idde::model
