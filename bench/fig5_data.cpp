// Figure 5 — effectiveness in Set #3: R_avg and L_avg vs the number of
// data items K (2..8; N=30, M=200, density=1.0).
#include "figure_common.hpp"

int main() {
  return idde::bench::run_figure_set(idde::sim::paper_sets()[2], "fig5_set3");
}
