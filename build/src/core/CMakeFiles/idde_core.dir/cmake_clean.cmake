file(REMOVE_RECURSE
  "CMakeFiles/idde_core.dir/delivery.cpp.o"
  "CMakeFiles/idde_core.dir/delivery.cpp.o.d"
  "CMakeFiles/idde_core.dir/fairness.cpp.o"
  "CMakeFiles/idde_core.dir/fairness.cpp.o.d"
  "CMakeFiles/idde_core.dir/game.cpp.o"
  "CMakeFiles/idde_core.dir/game.cpp.o.d"
  "CMakeFiles/idde_core.dir/greedy_delivery.cpp.o"
  "CMakeFiles/idde_core.dir/greedy_delivery.cpp.o.d"
  "CMakeFiles/idde_core.dir/idde_g.cpp.o"
  "CMakeFiles/idde_core.dir/idde_g.cpp.o.d"
  "CMakeFiles/idde_core.dir/metrics.cpp.o"
  "CMakeFiles/idde_core.dir/metrics.cpp.o.d"
  "CMakeFiles/idde_core.dir/potential.cpp.o"
  "CMakeFiles/idde_core.dir/potential.cpp.o.d"
  "CMakeFiles/idde_core.dir/refinement.cpp.o"
  "CMakeFiles/idde_core.dir/refinement.cpp.o.d"
  "CMakeFiles/idde_core.dir/strategy_io.cpp.o"
  "CMakeFiles/idde_core.dir/strategy_io.cpp.o.d"
  "CMakeFiles/idde_core.dir/validation.cpp.o"
  "CMakeFiles/idde_core.dir/validation.cpp.o.d"
  "libidde_core.a"
  "libidde_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idde_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
