"""Scan orchestration: discovery, parallel per-file pass, global passes,
baseline application, and output."""

from __future__ import annotations

import concurrent.futures
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path

from . import rules as rule_registry
from .baseline import BaselineEntry, apply_baseline
from .config import SOURCE_SUFFIXES, Config
from .findings import FileReport, Finding
from .source import SourceFile

# Worker-process state (ProcessPoolExecutor initializer): the Config is
# shipped once per worker instead of once per file.
_worker_cfg: Config | None = None
_worker_root: Path | None = None
_worker_rules: frozenset[str] | None = None


def _init_worker(cfg: Config, root: Path, active: frozenset[str]) -> None:
    global _worker_cfg, _worker_root, _worker_rules
    _worker_cfg = cfg
    _worker_root = root
    _worker_rules = active


def _scan_one(rel: str) -> FileReport:
    return scan_file(_worker_root, rel, _worker_cfg, _worker_rules)


def scan_file(root: Path, rel: str, cfg: Config,
              active: frozenset[str]) -> FileReport:
    sf = SourceFile.load(root, rel)
    report = FileReport(rel=rel)
    for pack in rule_registry.PACKS:
        if not active.intersection(pack.RULES):
            continue
        findings, facts = pack.scan(sf, cfg)
        report.findings.extend(
            f for f in findings if f.rule in active)
        report.suppressed += facts.pop("suppressed", 0)
        report.facts.update(facts)
    return report


def discover(root: Path, cfg: Config, only: list[str] | None) -> list[str]:
    """Repo-relative POSIX paths of every scannable source file."""
    if only:
        rels = []
        for item in only:
            path = (root / item).resolve()
            if not path.is_file():
                raise FileNotFoundError(f"no such file: {item}")
            rels.append(path.relative_to(root.resolve()).as_posix())
        return sorted(rels)
    rels = []
    for top in cfg.roots:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.is_file() and path.suffix in SOURCE_SUFFIXES:
                rel = path.relative_to(root).as_posix()
                if not cfg.in_scope(rel, cfg.exclude):
                    rels.append(rel)
    return rels


@dataclass
class RunResult:
    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: list[BaselineEntry] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.stale_baseline


def run(root: Path, cfg: Config, active: frozenset[str],
        baseline_entries: list[BaselineEntry],
        only: list[str] | None = None, jobs: int = 0) -> RunResult:
    rels = discover(root, cfg, only)
    result = RunResult(files_scanned=len(rels))

    if jobs == 0:
        jobs = min(8, os.cpu_count() or 1)
    reports: list[FileReport]
    if jobs <= 1 or len(rels) < 8:
        _init_worker(cfg, root, active)
        reports = [_scan_one(rel) for rel in rels]
    else:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=jobs, initializer=_init_worker,
                initargs=(cfg, root, active)) as pool:
            reports = list(pool.map(_scan_one, rels, chunksize=4))

    findings: list[Finding] = []
    for report in reports:
        findings.extend(report.findings)
        result.suppressed += report.suppressed
    for pack in rule_registry.PACKS:
        if hasattr(pack, "global_scan") and active.intersection(pack.RULES):
            findings.extend(
                f for f in pack.global_scan(reports, cfg) if f.rule in active)

    findings.sort()
    survivors, result.baselined, result.stale_baseline = apply_baseline(
        findings, baseline_entries)
    # Entries for rules outside this run's selection cannot match anything;
    # don't report them stale when the user narrowed --rules.
    if active != frozenset(rule_registry.ALL_RULES):
        result.stale_baseline = [
            e for e in result.stale_baseline if e.rule in active]
    result.findings = survivors
    return result


def render_text(result: RunResult, out) -> None:
    for finding in result.findings:
        print(f"{finding.file}:{finding.line}: [{finding.rule}] "
              f"{finding.message}", file=out)
    for entry in result.stale_baseline:
        print(f"{entry.file}: [stale-baseline] entry ({entry.rule}, "
              f"{entry.key}) matches no current finding — remove it "
              f"(reason was: {entry.reason})", file=out)
    status = "clean" if result.clean else (
        f"{len(result.findings)} finding(s), "
        f"{len(result.stale_baseline)} stale baseline entr(ies)")
    print(f"idde_analyze: {result.files_scanned} files, "
          f"{result.suppressed} suppressed, {result.baselined} baselined: "
          f"{status}", file=out)


def render_json(result: RunResult, out) -> None:
    doc = {
        "version": 1,
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "findings": [f.as_json() for f in result.findings],
        "stale_baseline": [
            {"rule": e.rule, "file": e.file, "key": e.key, "reason": e.reason}
            for e in result.stale_baseline],
        "clean": result.clean,
    }
    json.dump(doc, out, indent=1, sort_keys=True)
    out.write("\n")


def render(result: RunResult, fmt: str, out_path: str | None) -> None:
    if out_path:
        with open(out_path, "w", encoding="utf-8") as out:
            (render_json if fmt == "json" else render_text)(result, out)
    else:
        (render_json if fmt == "json" else render_text)(result, sys.stdout)
