// Phase 2 of IDDE-G (Algorithm 1, lines 22-26): greedily add the placement
// sigma_{i,k} with the highest latency-reduction-per-MB ratio (Eq. 17) until
// nothing feasible improves.
//
// Two planners are provided:
//  - plan(): lazy greedy. Because the committed min in Eq. 8 makes the gain
//    of every candidate monotonically non-increasing as sigma grows
//    (submodularity, the property behind Theorem 6), stale heap keys are
//    valid upper bounds: re-evaluate only the popped top and either commit
//    it (still the best) or push it back with its refreshed ratio.
//  - plan_naive(): re-scores all N*K candidates per step; the oracle for
//    tests and the ablation bench.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/delivery.hpp"
#include "core/strategy.hpp"
#include "model/instance.hpp"

namespace idde::core {

struct GreedyDeliveryResult {
  DeliveryProfile delivery;
  std::size_t placements = 0;
  std::size_t gain_evaluations = 0;
};

/// Planner methods are non-const because the planner owns reusable scratch
/// (the candidate heap's backing vector and one DeliveryEvaluator): after
/// the first plan on a given instance the greedy loop performs no heap
/// allocation per candidate or per committed move. Results are unaffected —
/// the scratch is rewound, never carried between plans.
class GreedyDeliveryPlanner {
 public:
  explicit GreedyDeliveryPlanner(const model::ProblemInstance& instance);

  [[nodiscard]] GreedyDeliveryResult plan(const AllocationProfile& allocation);

  [[nodiscard]] GreedyDeliveryResult plan_naive(
      const AllocationProfile& allocation);

 private:
  /// Heap entry: ratio key (possibly stale upper bound) plus the candidate.
  struct Candidate {
    double ratio;
    std::size_t server;
    std::size_t item;

    bool operator<(const Candidate& other) const {
      return ratio < other.ratio;  // max-heap on ratio
    }
  };

  /// Rewinds the evaluator scratch for a fresh plan (constructs it on the
  /// first call; resets it afterwards).
  DeliveryEvaluator& evaluator_for(const AllocationProfile& allocation);

  const model::ProblemInstance* instance_;
  std::vector<Candidate> heap_;                ///< push_heap/pop_heap store
  std::optional<DeliveryEvaluator> evaluator_; ///< built once per instance
};

}  // namespace idde::core
