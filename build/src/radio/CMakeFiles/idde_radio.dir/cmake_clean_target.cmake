file(REMOVE_RECURSE
  "libidde_radio.a"
)
