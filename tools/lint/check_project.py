#!/usr/bin/env python3
"""Project-specific lint for the idde tree.

Machine-enforces the repo's concurrency and contract conventions — the part
clang-tidy cannot know about:

  naked-sync    std::mutex / std::condition_variable / std::thread /
                std::lock_guard / std::scoped_lock / std::unique_lock /
                std::shared_mutex outside src/util/: use the annotated
                util::Mutex / util::MutexLock / util::CondVar
                (src/util/mutex.hpp) or util::ThreadPool, so clang
                -Wthread-safety can check the locking.
  naked-rand    rand() / srand() anywhere in scanned roots: use util::Rng —
                experiments must be seed-reproducible.
  naked-assert  assert( anywhere in scanned roots: use IDDE_ASSERT /
                IDDE_EXPECTS / IDDE_ENSURES (src/util/assert.hpp), which
                stay active in Release builds.
  std-using     `using namespace std` in any header.
  naked-sleep   std::this_thread::sleep_for / sleep_until outside src/util/
                and src/des/: wall-clock sleeps break seeded determinism
                and slow CI; simulated time belongs in the DES clock, and
                any real backoff belongs behind a util/ wrapper.
  naked-timing  steady_clock/system_clock/high_resolution_clock ::now()
                outside src/util/ and src/obs/: ad-hoc timing bypasses the
                telemetry layer; wrap the region in an obs::ScopedSpan
                (src/obs/trace.hpp) — elapsed_ms() replaces the manual
                delta and the span feeds the phase rollup and traces.
  unbounded-queue
                raw std::deque / std::queue in src/qos/ or src/des/ without
                a documented capacity bound: unbounded buffering is the
                congestion-collapse failure mode the overload layer exists
                to prevent. Either bound it (and say how in a
                `capacity-bound: ...` comment on or just above the line) or
                use a structure whose growth is externally limited.
                std::priority_queue (the DES event heap, bounded by the
                arrival schedule) is deliberately not matched.
  hot-path-alloc
                allocation syntax in the hot-tagged kernel files
                (HOT_PATH_FILES below — the per-move planner/evaluator
                inner loops): `new`, make_unique/make_shared, or a
                push_back/emplace_back whose receiver has no `.reserve(`
                anywhere in the file. These files are measured
                allocation-free per move (bench/perf_kernels gates on it);
                a stray heap allocation is a silent perf regression long
                before it is a correctness one. Cold-path sites (ctors,
                one-time setup) opt out with a trailing
                `// lint: alloc-ok(<reason>)` comment.

Scope: src/ bench/ tools/ examples/ (tests/ may use raw std::thread — the
concurrency stress suite drives the pool with them on purpose). src/util/
is exempt from naked-sync: it implements the wrappers.

A line can opt out with a trailing `// lint: allow(<rule>)` comment carrying
a justification nearby (hot-path-alloc uses the dedicated alloc-ok form so
the reason is mandatory). Exit status 1 on findings; 0 when clean.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SCANNED_ROOTS = ("src", "bench", "tools", "examples")
SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}
HEADER_SUFFIXES = {".hpp", ".h", ".hxx"}

SYNC_PATTERN = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|thread|jthread|lock_guard|scoped_lock|"
    r"unique_lock|shared_lock)\b"
)
RAND_PATTERN = re.compile(r"(?<![\w:])s?rand\s*\(")
ASSERT_PATTERN = re.compile(r"(?<![\w:.])assert\s*\(")
USING_STD_PATTERN = re.compile(r"\busing\s+namespace\s+std\b")
SLEEP_PATTERN = re.compile(r"\bstd::this_thread::sleep_(for|until)\b")
TIMING_PATTERN = re.compile(
    r"\b(steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
)
# Matches std::deque<...> and std::queue<...>, but not std::priority_queue.
QUEUE_PATTERN = re.compile(r"\bstd::(deque|queue)\s*<")
CAPACITY_NOTE = "capacity-bound:"
ALLOW_PATTERN = re.compile(r"//\s*lint:\s*allow\((?P<rules>[\w\-, ]+)\)")

# Hot-tagged kernel files: their inner loops run per candidate move and are
# benchmarked allocation-free (bench/perf_kernels --smoke gates on the
# warm-call allocation count). Repo-relative POSIX paths.
HOT_PATH_FILES = {
    "src/radio/interference.cpp",
    "src/radio/batch_eval.cpp",
    "src/radio/batch_eval.hpp",  # inline fast paths live in the header
    "src/core/greedy_delivery.cpp",
    "src/core/repair_planner.cpp",
}
NEW_EXPR_PATTERN = re.compile(r"(?<![\w:.])new\b")
MAKE_PTR_PATTERN = re.compile(r"\bmake_(unique|shared)\b")
# Captures the receiver expression so reservation can be checked per
# container: `foo_.push_back(` -> receiver "foo_".
PUSH_BACK_PATTERN = re.compile(
    r"(?P<recv>[A-Za-z_]\w*(?:\.\w+|->\w+|\[\w*\])*)\s*\.\s*"
    r"(?:push_back|emplace_back)\s*\("
)
ALLOC_OK_PATTERN = re.compile(r"//\s*lint:\s*alloc-ok\([^)]+\)")

LINE_COMMENT = re.compile(r"//.*$")
BLOCK_COMMENT_SPAN = re.compile(r"/\*.*?\*/")
STRING_LITERAL = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_noise(line: str) -> str:
    """Removes string literals, complete /*...*/ spans, and // comments so
    patterns match code only.

    Order matters: strings first (so a /* inside a literal is inert), then
    inline block-comment spans, then // comments. Any /* left after this is
    an unterminated block comment — the caller's state machine handles it.
    """
    line = STRING_LITERAL.sub('""', line)
    line = BLOCK_COMMENT_SPAN.sub(" ", line)
    return LINE_COMMENT.sub("", line)


def allowed_rules(line: str) -> set[str]:
    match = ALLOW_PATTERN.search(line)
    if not match:
        return set()
    return {rule.strip() for rule in match.group("rules").split(",")}


def scan_file(path: Path) -> list[tuple[Path, int, str, str]]:
    findings = []
    rel = path.relative_to(REPO_ROOT)
    hot_path = rel.as_posix() in HOT_PATH_FILES
    in_util = rel.parts[:2] == ("src", "util")
    sleep_exempt = rel.parts[:2] in (("src", "util"), ("src", "des"))
    timing_exempt = rel.parts[:2] in (("src", "util"), ("src", "obs"))
    queue_scoped = rel.parts[:2] in (("src", "qos"), ("src", "des"))
    is_header = path.suffix in HEADER_SUFFIXES
    in_block_comment = False

    text = path.read_text(errors="replace")
    lines = text.splitlines()
    for lineno, raw in enumerate(lines, 1):
        allows = allowed_rules(raw)
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        code = strip_noise(line)
        start = code.find("/*")
        if start >= 0:
            in_block_comment = True
            code = code[:start]

        def report(rule: str, message: str) -> None:
            if rule not in allows:
                findings.append((rel, lineno, rule, message))

        if not in_util and SYNC_PATTERN.search(code):
            report(
                "naked-sync",
                "raw std synchronisation primitive outside src/util/; use "
                "util::Mutex/MutexLock/CondVar (util/mutex.hpp) or "
                "util::ThreadPool so -Wthread-safety covers it",
            )
        if RAND_PATTERN.search(code):
            report("naked-rand", "rand()/srand() breaks seeded reproducibility; use util::Rng")
        if ASSERT_PATTERN.search(code) and "static_assert" not in code:
            report(
                "naked-assert",
                "use IDDE_ASSERT/IDDE_EXPECTS/IDDE_ENSURES (active in Release), not assert()",
            )
        if is_header and USING_STD_PATTERN.search(code):
            report("std-using", "`using namespace std` is banned in headers")
        if not sleep_exempt and SLEEP_PATTERN.search(code):
            report(
                "naked-sleep",
                "wall-clock sleep outside src/util//src/des/ breaks seeded "
                "determinism; advance simulated time or wrap it in util/",
            )
        if not timing_exempt and TIMING_PATTERN.search(code):
            report(
                "naked-timing",
                "raw clock timing outside src/util//src/obs/; use "
                "obs::ScopedSpan (obs/trace.hpp) so the measurement feeds "
                "the phase rollup and chrome traces",
            )
        if hot_path and not ALLOC_OK_PATTERN.search(raw):
            if NEW_EXPR_PATTERN.search(code) or MAKE_PTR_PATTERN.search(code):
                report(
                    "hot-path-alloc",
                    "heap allocation in a hot-tagged kernel file; hoist it "
                    "into member scratch, or mark the cold-path site with "
                    "`// lint: alloc-ok(<reason>)`",
                )
            for match in PUSH_BACK_PATTERN.finditer(code):
                # A push_back may grow its container. Reserved containers
                # (any `<receiver>.reserve(` in the file) amortise to zero
                # per-move allocations; everything else must justify itself.
                recv = match.group("recv")
                if re.escape(recv) and re.search(
                        re.escape(recv) + r"\s*\.\s*reserve\s*\(", text):
                    continue
                report(
                    "hot-path-alloc",
                    f"push_back on `{recv}` with no `.reserve(` in this "
                    "hot-tagged kernel file; reserve the container or mark "
                    "the site with `// lint: alloc-ok(<reason>)`",
                )
        if queue_scoped and QUEUE_PATTERN.search(code):
            # A `capacity-bound: ...` note on the line or within the three
            # lines above documents how growth is limited.
            nearby = lines[max(0, lineno - 4):lineno]
            if not any(CAPACITY_NOTE in text for text in nearby):
                report(
                    "unbounded-queue",
                    "raw std::deque/std::queue in src/qos//src/des/ without "
                    "a documented bound; add a `capacity-bound: ...` comment "
                    "explaining what limits its growth (or bound it)",
                )
    return findings


def main() -> int:
    findings = []
    for root in SCANNED_ROOTS:
        base = REPO_ROOT / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                findings.extend(scan_file(path))

    for rel, lineno, rule, message in findings:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"check_project: {len(findings)} finding(s)")
        return 1
    print("check_project: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
