// User mobility — the paper's stated future work ("we will investigate the
// dynamics of user movements and data migrations in IDDE scenarios").
// Random-waypoint is the standard pedestrian model: each user walks toward
// a uniformly drawn waypoint at a per-user speed, pauses, and picks the
// next waypoint.
#pragma once

#include <vector>

#include "geo/bbox.hpp"
#include "geo/point.hpp"
#include "util/random.hpp"

namespace idde::dynamic {

struct MobilityParams {
  double min_speed_mps = 0.5;  ///< slow pedestrian
  double max_speed_mps = 1.5;  ///< brisk pedestrian
  double pause_seconds = 5.0;  ///< dwell at each waypoint
};

class RandomWaypointModel {
 public:
  /// Per-user walk state, exposed for checkpoint/restore: together with
  /// the position and the walk RNG stream it is the model's entire state.
  struct WalkState {
    geo::Point waypoint;
    double speed_mps = 1.0;
    double pause_left_s = 0.0;
  };

  /// Starts every user at its given position with a fresh waypoint.
  RandomWaypointModel(std::vector<geo::Point> initial_positions,
                      geo::BoundingBox bounds, MobilityParams params,
                      util::Rng& rng);

  /// Advances all users by `dt` seconds.
  void step(double dt_seconds, util::Rng& rng);

  [[nodiscard]] const std::vector<geo::Point>& positions() const noexcept {
    return positions_;
  }
  [[nodiscard]] std::size_t user_count() const noexcept {
    return positions_.size();
  }

  /// Total distance walked by all users so far (metres).
  [[nodiscard]] double total_distance_m() const noexcept {
    return total_distance_m_;
  }

  [[nodiscard]] const std::vector<WalkState>& walks() const noexcept {
    return walks_;
  }

  /// Overwrites the model's state verbatim (checkpoint restore). Sizes
  /// must match the construction-time user count; the caller restores the
  /// walk RNG stream separately so the next step() draws identically.
  void restore_state(std::vector<geo::Point> positions,
                     std::vector<WalkState> walks, double total_distance_m);

 private:
  void assign_waypoint(std::size_t user, util::Rng& rng);

  std::vector<geo::Point> positions_;
  std::vector<WalkState> walks_;
  geo::BoundingBox bounds_;
  MobilityParams params_;
  double total_distance_m_ = 0.0;
};

}  // namespace idde::dynamic
