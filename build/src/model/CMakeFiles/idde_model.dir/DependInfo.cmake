
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/instance.cpp" "src/model/CMakeFiles/idde_model.dir/instance.cpp.o" "gcc" "src/model/CMakeFiles/idde_model.dir/instance.cpp.o.d"
  "/root/repo/src/model/instance_builder.cpp" "src/model/CMakeFiles/idde_model.dir/instance_builder.cpp.o" "gcc" "src/model/CMakeFiles/idde_model.dir/instance_builder.cpp.o.d"
  "/root/repo/src/model/instance_io.cpp" "src/model/CMakeFiles/idde_model.dir/instance_io.cpp.o" "gcc" "src/model/CMakeFiles/idde_model.dir/instance_io.cpp.o.d"
  "/root/repo/src/model/request_matrix.cpp" "src/model/CMakeFiles/idde_model.dir/request_matrix.cpp.o" "gcc" "src/model/CMakeFiles/idde_model.dir/request_matrix.cpp.o.d"
  "/root/repo/src/model/validation.cpp" "src/model/CMakeFiles/idde_model.dir/validation.cpp.o" "gcc" "src/model/CMakeFiles/idde_model.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/idde_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/idde_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/idde_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/idde_radio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
