#include "radio/batch_eval.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace idde::radio {

BatchEvaluator::BatchEvaluator(const InterferenceField& field)
    : field_(&field) {
  // Preallocate the scratch for the widest coverage set up front so the
  // per-call paths never touch vector capacity — best_response calls this
  // once per user per refresh, and any hidden realloc would dwarf the
  // arithmetic on small candidate sets.
  const RadioEnvironment& env = field.env();
  std::size_t max_candidates = 1;
  for (const auto& coverage : env.covering_servers) {
    max_candidates = std::max(max_candidates, coverage.size());
  }
  cross_.resize(max_candidates * env.channels_per_server, 0.0);
  gain_.resize(max_candidates, 0.0);
  out_.resize(max_candidates * env.channels_per_server, 0.0);
  coverage_size_.resize(env.user_count, 0);
  for (std::size_t j = 0; j < env.user_count; ++j) {
    coverage_size_[j] = static_cast<std::uint8_t>(
        std::min<std::size_t>(env.covering_servers[j].size(), 3));
  }
}

void BatchEvaluator::accumulate_cross(std::size_t user,
                                      std::span<const std::size_t> servers) {
  const RadioEnvironment& env = field_->env();
  const std::size_t channels = env.channels_per_server;
  const std::size_t server_count = env.server_count;
  const std::size_t candidates = servers.size();

  std::fill_n(cross_.data(), candidates * channels, 0.0);
  for (std::size_t a = 0; a < candidates; ++a) {
    gain_[a] = env.gain_at(servers[a], user);
  }

  const ChannelSlot current = field_->allocation_[user];
  const double p = env.power[user];
  const std::size_t* const cols = servers.data();
  const double* const received = field_->received_.data();
  const std::size_t* const users_on = field_->users_on_.data();

  // Interferer-major sweep over the user's full coverage set (the
  // candidates may be a restricted subset — DUP-G — but every covering
  // server interferes). For a fixed accumulator (a, x) the terms land in
  // ascending-server order with o == servers[a] skipped — the exact
  // summation sequence of the scalar cross_cell_interference_watts() loop, so
  // the accumulated values are bit-identical to the per-slot path.
  std::size_t skip = 0;  // candidates and coverage are both ascending
  for (const std::size_t o : env.covering_servers[user]) {
    while (skip < candidates && cols[skip] < o) ++skip;
    const bool has_skip = skip < candidates && cols[skip] == o;
    // With a single candidate equal to this interferer, every accumulator
    // skips it: nothing to add on any channel.
    if (has_skip && candidates == 1) continue;
    const std::size_t a_skip = has_skip ? skip : candidates;
    const bool on_server = current.allocated() && current.server == o;
    for (std::size_t x = 0; x < channels; ++x) {
      const std::size_t ox = o * channels + x;
      const double* const row = received + ox * server_count;
      double* const acc = cross_.data() + x * candidates;
      if (on_server && current.channel == x) {
        // The user's own transmission lands in this row. Alone on the
        // channel it contributes exactly zero (the residue rationale in
        // in_cell_power_excluding_watts); otherwise subtract it per candidate.
        if (users_on[ox] == 1) continue;
        for (std::size_t a = 0; a < a_skip; ++a) {
          acc[a] += row[cols[a]] - gain_[a] * p;
        }
        // The `a_skip < candidates` guard keeps `a_skip + 1` provably
        // non-wrapping for the optimiser (a_skip == candidates means no
        // candidate is skipped and the tail loop is empty anyway).
        if (a_skip < candidates) {
          for (std::size_t a = a_skip + 1; a < candidates; ++a) {
            acc[a] += row[cols[a]] - gain_[a] * p;
          }
        }
      } else {
        // Hot path: a pure gather-add over ascending columns of one
        // contiguous row, split at a_skip so no branch runs per candidate.
        for (std::size_t a = 0; a < a_skip; ++a) acc[a] += row[cols[a]];
        if (a_skip < candidates) {
          for (std::size_t a = a_skip + 1; a < candidates; ++a) {
            acc[a] += row[cols[a]];
          }
        }
      }
    }
  }
}

std::span<const double> BatchEvaluator::benefits_batched(
    std::size_t user, std::span<const std::size_t> servers) {
  const RadioEnvironment& env = field_->env();
  const std::size_t channels = env.channels_per_server;
  const std::size_t candidates = servers.size();
  accumulate_cross(user, servers);

  const ChannelSlot current = field_->allocation_[user];
  const double p = env.power[user];
  const double* const power_sum = field_->power_sum_.data();
  const std::size_t* const users_on = field_->users_on_.data();
  for (std::size_t a = 0; a < candidates; ++a) {
    const std::size_t server = servers[a];
    const double g = gain_[a];
    const double signal = g * p;
    const std::size_t base = server * channels;
    double* const row_out = out_.data() + a * channels;
    if (current.allocated() && current.server == server) {
      for (std::size_t x = 0; x < channels; ++x) {
        // in_cell_power_excluding_watts(), inlined with the same special cases.
        const double excl =
            current.channel == x
                ? (users_on[base + x] == 1
                       ? 0.0
                       : std::max(power_sum[base + x] - p, 0.0))
                : power_sum[base + x];
        const double cross = std::max(cross_[x * candidates + a], 0.0);
        // Mirrors InterferenceField::benefit() term for term (Eq. 12).
        row_out[x] = signal / (g * (excl + p) + cross);
      }
    } else {
      for (std::size_t x = 0; x < channels; ++x) {
        const double excl = power_sum[base + x];
        const double cross = std::max(cross_[x * candidates + a], 0.0);
        row_out[x] = signal / (g * (excl + p) + cross);
      }
    }
  }
  return {out_.data(), candidates * channels};
}

std::span<const double> BatchEvaluator::sinrs_batched(
    std::size_t user, std::span<const std::size_t> servers) {
  const RadioEnvironment& env = field_->env();
  const std::size_t channels = env.channels_per_server;
  const std::size_t candidates = servers.size();
  accumulate_cross(user, servers);

  const ChannelSlot current = field_->allocation_[user];
  const double p = env.power[user];
  const double noise = env.noise_watts;
  const double* const power_sum = field_->power_sum_.data();
  const std::size_t* const users_on = field_->users_on_.data();
  for (std::size_t a = 0; a < candidates; ++a) {
    const std::size_t server = servers[a];
    const double g = gain_[a];
    const double signal = g * p;
    const std::size_t base = server * channels;
    double* const row_out = out_.data() + a * channels;
    if (current.allocated() && current.server == server) {
      for (std::size_t x = 0; x < channels; ++x) {
        const double excl =
            current.channel == x
                ? (users_on[base + x] == 1
                       ? 0.0
                       : std::max(power_sum[base + x] - p, 0.0))
                : power_sum[base + x];
        const double cross = std::max(cross_[x * candidates + a], 0.0);
        // Mirrors InterferenceField::sinr() term for term (Eq. 2).
        row_out[x] = signal / (g * excl + cross + noise);
      }
    } else {
      for (std::size_t x = 0; x < channels; ++x) {
        const double excl = power_sum[base + x];
        const double cross = std::max(cross_[x * candidates + a], 0.0);
        row_out[x] = signal / (g * excl + cross + noise);
      }
    }
  }
  return {out_.data(), candidates * channels};
}

}  // namespace idde::radio
