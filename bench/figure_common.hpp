// Shared driver for the per-figure bench binaries: runs one paper set
// through the sweep harness and prints the series tables the figure plots,
// plus IDDE-G's advantage summary (the percentages quoted in Section 4.5).
//
// Knobs (environment):
//   IDDE_REPS          repetitions per sweep point (default 5; paper: 50)
//   IDDE_IP_BUDGET_MS  IDDE-IP anytime budget in ms (default 200; the paper
//                      capped CPLEX at 100 s of search)
//   IDDE_GAME_THREADS  GameOptions::threads for IDDE-G/DUP-G (default 1;
//                      repetitions already run in parallel)
//   IDDE_CSV_DIR       if set, also writes <figure>.csv there
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "sim/paper.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "util/env.hpp"

namespace idde::bench {

/// One point on the failure-severity axis shared by the resilience-style
/// benches (ext_resilience, ext_coding): a named FaultProfile.
struct SeverityProfile {
  const char* name;
  fault::FaultProfile fault;
};

/// The canonical severity grid: "moderate" (occasional outages, light
/// corruption) and "severe" (overlapping outages, 10% corruption). Smoke
/// runs keep only "moderate" so CI stays fast. Both benches iterate the
/// same profiles so their JSON outputs are directly comparable per name.
inline std::vector<SeverityProfile> make_severity_profiles(bool smoke) {
  fault::FaultProfile moderate;
  moderate.horizon_s = 60.0;
  moderate.server_mtbf_s = 40.0;
  moderate.server_mttr_s = 6.0;
  moderate.link_mtbf_s = 30.0;
  moderate.link_mttr_s = 4.0;
  moderate.cloud_mtbf_s = 60.0;
  moderate.cloud_mttr_s = 3.0;
  moderate.replica_corruption_prob = 0.02;

  fault::FaultProfile severe;
  severe.horizon_s = 60.0;
  severe.server_mtbf_s = 12.0;
  severe.server_mttr_s = 8.0;
  severe.link_mtbf_s = 10.0;
  severe.link_mttr_s = 5.0;
  severe.cloud_mtbf_s = 25.0;
  severe.cloud_mttr_s = 5.0;
  severe.replica_corruption_prob = 0.1;

  std::vector<SeverityProfile> profiles{{"moderate", moderate}};
  if (!smoke) profiles.push_back({"severe", severe});
  return profiles;
}

inline int run_figure_set(const sim::PaperSet& set,
                          const std::string& csv_name) {
  const int reps = util::experiment_reps(5);
  const double ip_budget = util::ip_budget_ms(200.0);

  std::printf("%s\n", sim::table2_text().c_str());
  std::printf(
      "Running %s (%s): %d repetitions/point, IDDE-IP budget %.0f ms\n\n",
      set.name.c_str(), set.figure.c_str(), reps, ip_budget);

  sim::SweepOptions options;
  options.repetitions = reps;
  options.ip_budget_ms = ip_budget;
  options.game_threads = util::game_threads(1);
  options.on_point = [](const sim::PointResult& point) {
    std::fprintf(stderr, "  done %s\n", point.label.c_str());
  };
  const auto results = sim::run_paper_sweep(set.points, options);

  std::printf("%s(a)  Average Data Rate R_avg (MB/s) vs %s\n",
              set.figure.c_str(), set.x_label.c_str());
  sim::series_table(results, sim::Metric::kRate, set.x_label)
      .print(std::cout);
  std::printf("\n%s(b)  Average Data Delivery Latency L_avg (ms) vs %s\n",
              set.figure.c_str(), set.x_label.c_str());
  sim::series_table(results, sim::Metric::kLatency, set.x_label)
      .print(std::cout);
  std::printf("\nComputation time (ms) vs %s\n", set.x_label.c_str());
  sim::series_table(results, sim::Metric::kSolveTime, set.x_label)
      .print(std::cout);

  std::printf("\nIDDE-G advantages over the benchmarks in %s:\n",
              set.name.c_str());
  for (const sim::Advantage& adv : sim::advantages_of(results, "IDDE-G")) {
    std::printf("  vs %-8s rate %+6.2f%%, latency %+6.2f%% lower\n",
                adv.versus.c_str(), adv.rate_gain_pct,
                adv.latency_reduction_pct);
  }

  const std::string csv_dir = util::env_or("IDDE_CSV_DIR", "");
  if (!csv_dir.empty()) {
    const std::string path = csv_dir + "/" + csv_name + ".csv";
    std::ofstream out(path);
    if (out) {
      sim::write_csv(out, results, set.x_label);
      std::printf("\nCSV written to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
    }
  }
  std::fflush(stdout);
  return 0;
}

}  // namespace idde::bench
