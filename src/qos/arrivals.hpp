// Open-loop arrival generation for the overload-aware DES.
//
// The pre-QoS replay is closed over the request matrix: every (user, item)
// request happens exactly once, so offered load can never exceed what the
// strategy was sized for. An ArrivalSchedule decouples offered load from
// the catalogue: each base request spawns a seed-deterministic number of
// arrivals (mean = load_multiplier) whose times follow the configured
// process. Generation order is fixed (base requests user-major, copies
// consecutive), so the schedule is a pure function of
// (instance, ArrivalConfig, rng state) — thread count and query order
// cannot change it.
#pragma once

#include <cstddef>
#include <vector>

#include "model/instance.hpp"
#include "qos/config.hpp"
#include "util/random.hpp"

namespace idde::qos {

struct Arrival {
  std::size_t user = 0;
  std::size_t item = 0;
  double time_s = 0.0;
};

/// Generates the offered-load schedule for a non-replay process. Arrivals
/// are returned in generation order (not time order); the DES orders them
/// through its event queue. Requires !config.inert().
[[nodiscard]] std::vector<Arrival> generate_arrivals(
    const model::ProblemInstance& instance, const ArrivalConfig& config,
    util::Rng& rng);

}  // namespace idde::qos
