
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/allocators.cpp" "src/baselines/CMakeFiles/idde_baselines.dir/allocators.cpp.o" "gcc" "src/baselines/CMakeFiles/idde_baselines.dir/allocators.cpp.o.d"
  "/root/repo/src/baselines/cdp.cpp" "src/baselines/CMakeFiles/idde_baselines.dir/cdp.cpp.o" "gcc" "src/baselines/CMakeFiles/idde_baselines.dir/cdp.cpp.o.d"
  "/root/repo/src/baselines/dup_g.cpp" "src/baselines/CMakeFiles/idde_baselines.dir/dup_g.cpp.o" "gcc" "src/baselines/CMakeFiles/idde_baselines.dir/dup_g.cpp.o.d"
  "/root/repo/src/baselines/idde_ip.cpp" "src/baselines/CMakeFiles/idde_baselines.dir/idde_ip.cpp.o" "gcc" "src/baselines/CMakeFiles/idde_baselines.dir/idde_ip.cpp.o.d"
  "/root/repo/src/baselines/local_placement.cpp" "src/baselines/CMakeFiles/idde_baselines.dir/local_placement.cpp.o" "gcc" "src/baselines/CMakeFiles/idde_baselines.dir/local_placement.cpp.o.d"
  "/root/repo/src/baselines/saa.cpp" "src/baselines/CMakeFiles/idde_baselines.dir/saa.cpp.o" "gcc" "src/baselines/CMakeFiles/idde_baselines.dir/saa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/idde_core.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/idde_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/idde_model.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/idde_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/idde_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/idde_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/idde_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
