#pragma once

#include <algorithm>

#include "geo/point.hpp"
#include "util/assert.hpp"

namespace idde::geo {

/// Axis-aligned bounding box; `min` must be component-wise <= `max`.
struct BoundingBox {
  Point min;
  Point max;

  [[nodiscard]] double width() const noexcept { return max.x - min.x; }
  [[nodiscard]] double height() const noexcept { return max.y - min.y; }

  [[nodiscard]] bool contains(const Point& p) const noexcept {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  [[nodiscard]] Point clamp(const Point& p) const noexcept {
    return Point{std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y)};
  }

  [[nodiscard]] static BoundingBox square(double side) {
    IDDE_EXPECTS(side > 0.0);
    return BoundingBox{Point{0.0, 0.0}, Point{side, side}};
  }
};

}  // namespace idde::geo
