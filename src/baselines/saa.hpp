// SAA — Sample Average Approximation, after Ning et al., "Distributed and
// dynamic service placement in pervasive edge computing networks"
// (TPDS'20), adapted as in Section 4.1:
//  - no interference awareness at all: users pick a random covering server
//    and channel,
//  - each edge server independently decides its own placements from a
//    sampled subset of the requests originating in its coverage,
//    maximising a storage-utility score (per-MB cloud saving weighted by
//    sampled demand).
#pragma once

#include "core/approach.hpp"

namespace idde::baselines {

class Saa final : public core::Approach {
 public:
  /// `sample_fraction` controls how much of its coverage each server
  /// observes when estimating demand (Ning et al. use Monte-Carlo samples).
  explicit Saa(double sample_fraction = 0.6)
      : sample_fraction_(sample_fraction) {}

  [[nodiscard]] std::string name() const override { return "SAA"; }

  [[nodiscard]] core::Strategy solve(const model::ProblemInstance& instance,
                                     util::Rng& rng) const override;

 private:
  double sample_fraction_;
};

}  // namespace idde::baselines
