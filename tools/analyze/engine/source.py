"""Shared source scanner: loading, stripping, and suppression parsing.

Every rule works from a `SourceFile`, which exposes the file twice:

  raw_lines   the file as written — used for suppression comments and the
              justification tags some rules accept (`memory-order: ...`,
              `capacity-bound: ...`, `ordered-reduction: ...`);
  code        the file with string literals, character literals, raw
              strings, and comments blanked out (same length, same line
              structure), so rule patterns match code only and positions in
              `code` map 1:1 to positions in the original text.

The stripper is a single whole-file pass, unlike the old per-line state
machine in check_project.py — raw strings (R"delim(...)delim") and
multi-line block comments are handled exactly instead of approximately.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

ALLOW_PATTERN = re.compile(r"//\s*lint:\s*allow\((?P<rules>[\w\-, ]+)\)")
RAW_STRING_OPEN = re.compile(r'R"([^\s()\\]{0,16})\(')


def strip_code(text: str) -> str:
    """Blanks comments and literals, preserving length and newlines.

    Stripped characters become spaces (newlines inside block comments and
    raw strings survive), so byte offsets and line numbers in the result
    address the original file.
    """
    out = list(text)
    i = 0
    n = len(text)

    def blank(start: int, end: int) -> None:
        for k in range(start, min(end, n)):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end < 0 else end
            blank(i, end)
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end < 0 else end + 2
            blank(i, end)
            i = end
        elif c == "R" and nxt == '"' and (i == 0 or not text[i - 1].isalnum()):
            match = RAW_STRING_OPEN.match(text, i)
            if match is None:
                i += 1
                continue
            closer = ")" + match.group(1) + '"'
            end = text.find(closer, match.end())
            end = n if end < 0 else end + len(closer)
            blank(i, end)
            i = end
        elif c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            end = min(j + 1, n)
            blank(i + 1, end - 1)  # keep the quotes: "" stays visibly a string
            i = end
        else:
            i += 1
    return "".join(out)


@dataclass
class SourceFile:
    """One scanned file plus the derived views rules consume."""

    rel: str                      # repo-root-relative POSIX path
    path: Path
    text: str                     # original contents
    code: str = field(default="", repr=False)       # stripped contents
    raw_lines: list[str] = field(default_factory=list, repr=False)
    code_lines: list[str] = field(default_factory=list, repr=False)
    allows: dict[int, set[str]] = field(default_factory=dict, repr=False)

    @classmethod
    def load(cls, root: Path, rel: str) -> "SourceFile":
        path = root / rel
        text = path.read_text(errors="replace")
        sf = cls(rel=rel, path=path, text=text)
        sf.code = strip_code(text)
        sf.raw_lines = text.splitlines()
        sf.code_lines = sf.code.splitlines()
        for lineno, raw in enumerate(sf.raw_lines, 1):
            match = ALLOW_PATTERN.search(raw)
            if match:
                sf.allows[lineno] = {
                    rule.strip() for rule in match.group("rules").split(",")
                }
        return sf

    def line_of(self, offset: int) -> int:
        """1-based line number of a byte offset into text/code."""
        return self.text.count("\n", 0, offset) + 1

    def allowed(self, lineno: int, rule: str) -> bool:
        return rule in self.allows.get(lineno, ())

    def tag_nearby(self, lineno: int, tag: str, above: int = 3) -> bool:
        """True when a justification `tag` appears on the line or within
        `above` raw lines before it — the convention shared by
        `capacity-bound:`, `memory-order:`, and `ordered-reduction:`."""
        lo = max(0, lineno - 1 - above)
        return any(tag in raw for raw in self.raw_lines[lo:lineno])

    def top_dirs(self, depth: int = 2) -> tuple[str, ...]:
        return tuple(self.rel.split("/")[:depth])
