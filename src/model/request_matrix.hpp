// The request indicator zeta_{j,k}: which users request which data items.
// Stored both user-major and item-major because Phase 2's greedy walks all
// requests of one item while the metrics walk all requests of one user.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace idde::model {

class RequestMatrix {
 public:
  RequestMatrix(std::size_t user_count, std::size_t data_count);

  /// Marks zeta_{j,k} = 1; idempotent.
  void add_request(std::size_t user, std::size_t item);

  [[nodiscard]] bool requests(std::size_t user, std::size_t item) const;

  [[nodiscard]] std::span<const std::size_t> items_of(std::size_t user) const;
  [[nodiscard]] std::span<const std::size_t> users_of(std::size_t item) const;

  /// sum_{j,k} zeta_{j,k}, the L_ave denominator (Eq. 9).
  [[nodiscard]] std::size_t total_requests() const noexcept { return total_; }

  [[nodiscard]] std::size_t user_count() const noexcept {
    return by_user_.size();
  }
  [[nodiscard]] std::size_t data_count() const noexcept {
    return by_item_.size();
  }

 private:
  std::vector<std::vector<std::size_t>> by_user_;
  std::vector<std::vector<std::size_t>> by_item_;
  std::vector<bool> flags_;  // row-major M x K
  std::size_t total_ = 0;
};

}  // namespace idde::model
