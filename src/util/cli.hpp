// Tiny declarative CLI flag parser for the example and bench binaries.
// Supports --name=value, --name value, and boolean --name forms.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace idde::util {

class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// All registrations take a pointer to caller-owned storage holding the
  /// default; the pointer must outlive parse().
  void add_int(std::string_view name, int* storage, std::string_view help);
  void add_size(std::string_view name, std::size_t* storage,
                std::string_view help);
  void add_double(std::string_view name, double* storage,
                  std::string_view help);
  void add_string(std::string_view name, std::string* storage,
                  std::string_view help);
  void add_flag(std::string_view name, bool* storage, std::string_view help);

  /// Returns false (after printing usage) when --help is requested; throws
  /// std::invalid_argument for unknown flags or malformed values.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kInt, kSize, kDouble, kString, kFlag };

  struct Option {
    std::string name;
    Kind kind;
    void* storage;
    std::string help;
    std::string default_repr;
  };

  void add_option(std::string_view name, Kind kind, void* storage,
                  std::string_view help, std::string default_repr);
  Option* find(std::string_view name);
  static void assign(Option& opt, std::string_view value);

  std::string description_;
  std::vector<Option> options_;
};

}  // namespace idde::util
