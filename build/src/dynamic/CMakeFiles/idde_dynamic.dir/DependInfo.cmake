
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dynamic/churn.cpp" "src/dynamic/CMakeFiles/idde_dynamic.dir/churn.cpp.o" "gcc" "src/dynamic/CMakeFiles/idde_dynamic.dir/churn.cpp.o.d"
  "/root/repo/src/dynamic/migration.cpp" "src/dynamic/CMakeFiles/idde_dynamic.dir/migration.cpp.o" "gcc" "src/dynamic/CMakeFiles/idde_dynamic.dir/migration.cpp.o.d"
  "/root/repo/src/dynamic/mobility.cpp" "src/dynamic/CMakeFiles/idde_dynamic.dir/mobility.cpp.o" "gcc" "src/dynamic/CMakeFiles/idde_dynamic.dir/mobility.cpp.o.d"
  "/root/repo/src/dynamic/simulation.cpp" "src/dynamic/CMakeFiles/idde_dynamic.dir/simulation.cpp.o" "gcc" "src/dynamic/CMakeFiles/idde_dynamic.dir/simulation.cpp.o.d"
  "/root/repo/src/dynamic/world.cpp" "src/dynamic/CMakeFiles/idde_dynamic.dir/world.cpp.o" "gcc" "src/dynamic/CMakeFiles/idde_dynamic.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/idde_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/idde_model.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/idde_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/idde_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/idde_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/idde_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
