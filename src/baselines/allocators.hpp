// Non-game user allocators used by the benchmark approaches: they pick a
// server (and channel) per user without modelling interference, which is
// precisely the behaviour the IDDE paper argues against.
#pragma once

#include "core/strategy.hpp"
#include "model/instance.hpp"
#include "util/random.hpp"

namespace idde::baselines {

enum class ChannelPolicy {
  kLeastLoaded,  ///< balance users across the server's channels
  kRandom,       ///< interference-oblivious uniform pick
};

/// Each user joins its nearest covering server (equivalently, strongest
/// channel gain under the log-distance model). The channel is chosen per
/// `policy`; kRandom requires `rng`.
[[nodiscard]] core::AllocationProfile nearest_allocation(
    const model::ProblemInstance& instance,
    ChannelPolicy policy = ChannelPolicy::kLeastLoaded,
    util::Rng* rng = nullptr);

/// Each user joins a uniformly random covering server and channel —
/// the interference-oblivious strawman.
[[nodiscard]] core::AllocationProfile random_allocation(
    const model::ProblemInstance& instance, util::Rng& rng);

}  // namespace idde::baselines
