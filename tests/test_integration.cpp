// End-to-end properties of the full pipeline — the statistical claims the
// paper's figures rest on, checked at reduced scale:
//  - IDDE-G achieves the highest average data rate and the lowest average
//    delivery latency of the five approaches (averaged over seeds),
//  - R_avg falls with M and rises with N; L_avg rises with K,
//  - all approaches produce feasible strategies everywhere.
#include <gtest/gtest.h>

#include <map>

#include "core/idde_g.hpp"
#include "core/metrics.hpp"
#include "model/instance_builder.hpp"
#include "sim/paper.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"
#include "util/format.hpp"

namespace {

using namespace idde;

/// Reduced-scale default point (keeps CI fast; the benches run full scale).
model::InstanceParams ci_params() {
  model::InstanceParams p = sim::paper_default_params();
  p.server_count = 15;
  p.user_count = 80;
  p.data_count = 4;
  return p;
}

std::map<std::string, std::pair<double, double>> averaged_metrics(
    const model::InstanceParams& params, int reps, double ip_budget_ms = 25.0) {
  const auto approaches = sim::make_paper_approaches(ip_budget_ms);
  std::map<std::string, std::pair<double, double>> sums;
  const model::InstanceBuilder builder(params);
  for (int rep = 0; rep < reps; ++rep) {
    const auto inst = builder.build(5000 + static_cast<std::uint64_t>(rep));
    for (const auto& approach : approaches) {
      util::Rng rng(900 + static_cast<std::uint64_t>(rep));
      const auto record = sim::run_approach(inst, *approach, rng, true);
      sums[record.approach].first += record.metrics.avg_rate_mbps;
      sums[record.approach].second += record.metrics.avg_latency_ms;
    }
  }
  for (auto& [name, metrics] : sums) {
    metrics.first /= reps;
    metrics.second /= reps;
  }
  return sums;
}

TEST(EndToEnd, IddeGWinsBothObjectivesOnAverage) {
  const auto metrics = averaged_metrics(ci_params(), 6);
  const auto& [g_rate, g_latency] = metrics.at("IDDE-G");
  for (const auto& [name, rate_latency] : metrics) {
    if (name == "IDDE-G") continue;
    EXPECT_GE(g_rate, rate_latency.first * 0.98) << "rate vs " << name;
    EXPECT_LE(g_latency, rate_latency.second * 1.02) << "latency vs " << name;
  }
}

TEST(EndToEnd, InterferenceObliviousBaselinesTrailOnRate) {
  const auto metrics = averaged_metrics(ci_params(), 5);
  // SAA (random channels) must trail IDDE-G by a clear margin.
  EXPECT_LT(metrics.at("SAA").first, metrics.at("IDDE-G").first * 0.95);
}

TEST(EndToEnd, NonCollaborativeBaselinesPayLatency) {
  const auto metrics = averaged_metrics(ci_params(), 5);
  EXPECT_GT(metrics.at("CDP").second, metrics.at("IDDE-G").second * 1.5);
  EXPECT_GT(metrics.at("DUP-G").second, metrics.at("IDDE-G").second * 1.5);
}

TEST(EndToEnd, RateFallsWithMoreUsers) {
  // Fig. 4(a)'s trend.
  model::InstanceParams low = ci_params();
  low.user_count = 30;
  model::InstanceParams high = ci_params();
  high.user_count = 150;
  double rate_low = 0.0;
  double rate_high = 0.0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto a = model::make_instance(low, 6000 + seed);
    const auto b = model::make_instance(high, 6000 + seed);
    util::Rng rng(seed);
    core::IddeG g;
    rate_low += core::evaluate(a, g.solve(a, rng)).avg_rate_mbps;
    rate_high += core::evaluate(b, g.solve(b, rng)).avg_rate_mbps;
  }
  EXPECT_GT(rate_low, rate_high);
}

TEST(EndToEnd, RateRisesWithMoreServers) {
  // Fig. 3(a)'s trend.
  model::InstanceParams few = ci_params();
  few.server_count = 10;
  model::InstanceParams many = ci_params();
  many.server_count = 40;
  double rate_few = 0.0;
  double rate_many = 0.0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto a = model::make_instance(few, 7000 + seed);
    const auto b = model::make_instance(many, 7000 + seed);
    util::Rng rng(seed);
    core::IddeG g;
    rate_few += core::evaluate(a, g.solve(a, rng)).avg_rate_mbps;
    rate_many += core::evaluate(b, g.solve(b, rng)).avg_rate_mbps;
  }
  EXPECT_GT(rate_many, rate_few);
}

TEST(EndToEnd, LatencyRisesWithMoreData) {
  // Fig. 5(b)'s trend: a larger catalogue under fixed storage.
  model::InstanceParams few = ci_params();
  few.data_count = 2;
  model::InstanceParams many = ci_params();
  many.data_count = 8;
  double lat_few = 0.0;
  double lat_many = 0.0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto a = model::make_instance(few, 8000 + seed);
    const auto b = model::make_instance(many, 8000 + seed);
    util::Rng rng(seed);
    core::IddeG g;
    lat_few += core::evaluate(a, g.solve(a, rng)).avg_latency_ms;
    lat_many += core::evaluate(b, g.solve(b, rng)).avg_latency_ms;
  }
  EXPECT_GT(lat_many, lat_few);
}

TEST(EndToEnd, FullSweepPipelineRuns) {
  // One miniature end-to-end sweep through the real harness with all five
  // approaches: every cell populated, labels ordered.
  std::vector<sim::SweepPoint> points;
  for (const std::size_t n : {10u, 14u}) {
    model::InstanceParams p = ci_params();
    p.server_count = n;
    points.push_back({util::format("N={}", n), p});
  }
  sim::SweepOptions options;
  options.repetitions = 2;
  options.threads = 2;
  const auto approaches = sim::make_paper_approaches(/*ip_budget_ms=*/15.0);
  const auto results = sim::run_sweep(points, approaches, options);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& point : results) {
    ASSERT_EQ(point.cells.size(), 5u);
    for (const auto& cell : point.cells) {
      EXPECT_GT(cell.rate_mbps.mean, 0.0);
      EXPECT_GT(cell.latency_ms.mean, 0.0);
      EXPECT_EQ(cell.rate_mbps.n, 2u);
    }
  }
  const auto advantages = sim::advantages_of(results, "IDDE-G");
  EXPECT_EQ(advantages.size(), 4u);
}

}  // namespace
