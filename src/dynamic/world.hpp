// Rebuilding instances as users move. Everything except user positions —
// servers, storage, the edge network, the data catalogue, the request
// matrix, user powers and rate caps — is carried over from the base
// instance; channel gains and coverage sets are recomputed from the new
// positions.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "geo/point.hpp"
#include "model/instance.hpp"
#include "radio/pathloss.hpp"

namespace idde::dynamic {

/// Returns a fresh instance identical to `base` except that user j sits at
/// `positions[j]`. `positions.size()` must equal `base.user_count()`.
[[nodiscard]] model::ProblemInstance with_user_positions(
    const model::ProblemInstance& base,
    const std::vector<geo::Point>& positions,
    const radio::PathLossModel& pathloss);

/// Initial user positions of an instance (convenience for mobility setup).
[[nodiscard]] std::vector<geo::Point> user_positions(
    const model::ProblemInstance& instance);

/// Change-tracked instance rebuilds for time-stepped drivers. Keeps a
/// working copy of the base environment and refreshes channel gains and
/// coverage sets only for users whose position actually changed since the
/// previous update (exact coordinate compare — a paused user costs
/// nothing). Each per-user gain/coverage entry is a pure function of that
/// user's position, so the tracked environment is bit-identical to a full
/// `with_user_positions` rebuild, which stays available as the oracle
/// (tests/test_dynamic.cpp asserts equivalence entry by entry).
class WorldTracker {
 public:
  WorldTracker(const model::ProblemInstance& base,
               radio::PathLossModel pathloss);

  /// Moves the tracked world to `positions` and rebuilds the instance.
  /// Returns the number of users whose gains/coverage were recomputed.
  std::size_t update(const std::vector<geo::Point>& positions);

  /// The instance at the most recent update (initially the base world).
  [[nodiscard]] const model::ProblemInstance& instance() const noexcept {
    return *instance_;
  }
  [[nodiscard]] const std::vector<geo::Point>& positions() const noexcept {
    return positions_;
  }

 private:
  const model::ProblemInstance* base_;
  radio::PathLossModel pathloss_;
  std::vector<geo::Point> positions_;
  std::vector<model::User> users_;     ///< base users at tracked positions
  radio::RadioEnvironment env_;        ///< working copy, patched per user
  std::optional<model::ProblemInstance> instance_;
};

}  // namespace idde::dynamic
