file(REMOVE_RECURSE
  "libidde_dynamic.a"
)
