file(REMOVE_RECURSE
  "CMakeFiles/ablation_game_rules.dir/bench/ablation_game_rules.cpp.o"
  "CMakeFiles/ablation_game_rules.dir/bench/ablation_game_rules.cpp.o.d"
  "bench/ablation_game_rules"
  "bench/ablation_game_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_game_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
