// Rebuilding instances as users move. Everything except user positions —
// servers, storage, the edge network, the data catalogue, the request
// matrix, user powers and rate caps — is carried over from the base
// instance; channel gains and coverage sets are recomputed from the new
// positions.
#pragma once

#include <vector>

#include "geo/point.hpp"
#include "model/instance.hpp"
#include "radio/pathloss.hpp"

namespace idde::dynamic {

/// Returns a fresh instance identical to `base` except that user j sits at
/// `positions[j]`. `positions.size()` must equal `base.user_count()`.
[[nodiscard]] model::ProblemInstance with_user_positions(
    const model::ProblemInstance& base,
    const std::vector<geo::Point>& positions,
    const radio::PathLossModel& pathloss);

/// Initial user positions of an instance (convenience for mobility setup).
[[nodiscard]] std::vector<geo::Point> user_positions(
    const model::ProblemInstance& instance);

}  // namespace idde::dynamic
