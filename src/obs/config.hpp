// Compile-time and runtime switches for the telemetry subsystem.
//
// Compile-time: build with -DIDDE_OBS=0 (CMake -DIDDE_OBS=OFF) and every
// instrumentation macro in obs/obs.hpp expands to nothing — a disabled
// build carries zero telemetry cost and zero telemetry code on the
// instrumented paths. The obs library itself still compiles (so link lines
// and direct API users such as idde_tool do not need their own #if
// forests), it just never gets fed.
//
// Runtime (IDDE_OBS=1 builds): recording is OFF by default and every macro
// is a single relaxed atomic load + branch until someone turns it on —
// that branch is the whole overhead contract of the CI obs-overhead gate.
// Enable with set_enabled(true), or from the environment:
//   IDDE_TELEMETRY=1   counters/gauges/histograms + span rollups
//   IDDE_TRACE=1       the above plus trace-event capture (chrome://tracing)
// idde_tool --metrics-out/--trace-out and the bench --telemetry flags call
// set_enabled()/set_trace_enabled() explicitly.
#pragma once

#ifndef IDDE_OBS
#define IDDE_OBS 1
#endif

namespace idde::obs {

/// Master runtime switch: metrics cells and span timing record only while
/// this is true. One relaxed atomic load; safe to call from any thread.
[[nodiscard]] bool enabled() noexcept;

/// Trace-event capture (implies nothing about `enabled()`; the macros
/// check both where relevant). Span *rollup* aggregation follows
/// `enabled()`; the per-event chrome buffer additionally needs this.
[[nodiscard]] bool trace_enabled() noexcept;

void set_enabled(bool on) noexcept;
void set_trace_enabled(bool on) noexcept;

}  // namespace idde::obs
