file(REMOVE_RECURSE
  "CMakeFiles/idde_net.dir/graph.cpp.o"
  "CMakeFiles/idde_net.dir/graph.cpp.o.d"
  "CMakeFiles/idde_net.dir/graph_gen.cpp.o"
  "CMakeFiles/idde_net.dir/graph_gen.cpp.o.d"
  "CMakeFiles/idde_net.dir/latency.cpp.o"
  "CMakeFiles/idde_net.dir/latency.cpp.o.d"
  "CMakeFiles/idde_net.dir/shortest_path.cpp.o"
  "CMakeFiles/idde_net.dir/shortest_path.cpp.o.d"
  "CMakeFiles/idde_net.dir/wan_profile.cpp.o"
  "CMakeFiles/idde_net.dir/wan_profile.cpp.o.d"
  "libidde_net.a"
  "libidde_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idde_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
