// Fixture: wait-for-completion loops in the DES scope with no hedge
// deadline, retry budget, or timeout anywhere in the file —
// unhedged-wait fires on the pending-watch loop; the in-flight drain is
// inline-suppressed and counts as suppressed, not found.
#include <cstddef>

namespace fixture {

struct Engine {
  std::size_t pending = 0;
  std::size_t in_flight = 0;
  void step();
};

void drain_everything(Engine& engine) {
  while (engine.pending > 0) {  // finding: nothing can preempt this wait
    engine.step();
  }
}

void drain_in_flight(Engine& engine) {
  while (engine.in_flight > 0) {  // lint: allow(unhedged-wait)
    engine.step();
  }
}

}  // namespace fixture
