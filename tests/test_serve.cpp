// Self-healing online controller: determinism, crash-consistent
// checkpoint/restore, watchdog containment of cycling dynamics, and
// mass-failure recovery.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/checkpoint.hpp"
#include "serve/controller.hpp"
#include "sim/paper.hpp"
#include "util/json.hpp"

namespace {

using namespace idde;

serve::ServeConfig small_config() {
  serve::ServeConfig config;
  config.base = sim::paper_default_params();
  config.base.server_count = 10;
  config.base.user_count = 40;
  config.base.data_count = 3;
  config.tick_seconds = 1.0;
  // Brisk churn so every run sees join/leave events.
  config.churn.arrival_rate_hz = 1.0 / 20.0;
  config.churn.mean_session_s = 40.0;
  config.churn.initial_online_fraction = 0.9;
  // Random server faults inside the run window.
  config.faults.horizon_s = 200.0;
  config.faults.server_mtbf_s = 120.0;
  config.faults.server_mttr_s = 8.0;
  config.sigma_refresh_period_ticks = 10;
  return config;
}

TEST(Serve, TrajectoryIsPureFunctionOfConfigAndSeed) {
  serve::ServeController a(small_config(), 7);
  serve::ServeController b(small_config(), 7);
  ASSERT_EQ(a.trajectory_hash(), b.trajectory_hash());
  for (int step = 0; step < 30; ++step) {
    const serve::TickReport ra = a.tick();
    const serve::TickReport rb = b.tick();
    ASSERT_EQ(a.trajectory_hash(), b.trajectory_hash()) << "tick " << step;
    ASSERT_EQ(ra.events, rb.events);
    ASSERT_EQ(ra.repairs, rb.repairs);
    ASSERT_EQ(ra.backlog, rb.backlog);
  }
  EXPECT_GT(a.status().events_total, 0u);
}

TEST(Serve, CheckpointRoundTripIsByteStable) {
  serve::ServeController a(small_config(), 11);
  for (int step = 0; step < 13; ++step) (void)a.tick();
  const std::string snapshot = a.checkpoint();

  serve::ServeController b(small_config(), 11);
  b.restore(snapshot);
  EXPECT_EQ(b.checkpoint(), snapshot);
  EXPECT_EQ(b.trajectory_hash(), a.trajectory_hash());
  EXPECT_EQ(b.current_tick(), a.current_tick());
}

// The acceptance gate: kill the process at an arbitrary event boundary,
// restore from the snapshot, and the remaining trajectory is bit-identical
// to the uninterrupted run — across 10 seeds with the cut point varying.
TEST(Serve, CrashRestoreResumesBitIdenticallyAcrossTenSeeds) {
  constexpr std::size_t kTicks = 32;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const std::size_t cut = 4 + static_cast<std::size_t>(seed * 7 % 21);

    serve::ServeController uninterrupted(small_config(), seed);
    for (std::size_t step = 0; step < kTicks; ++step) {
      (void)uninterrupted.tick();
    }

    serve::ServeController victim(small_config(), seed);
    for (std::size_t step = 0; step < cut; ++step) (void)victim.tick();
    const std::string snapshot = victim.checkpoint();
    // "Kill" the victim: the survivor starts from scratch and only sees
    // the snapshot.
    serve::ServeController survivor(small_config(), seed);
    survivor.restore(snapshot);
    for (std::size_t step = cut; step < kTicks; ++step) {
      (void)survivor.tick();
    }

    EXPECT_EQ(survivor.trajectory_hash(), uninterrupted.trajectory_hash())
        << "seed " << seed << " cut " << cut;
    EXPECT_EQ(survivor.status().events_total,
              uninterrupted.status().events_total)
        << "seed " << seed;
    EXPECT_EQ(survivor.status().repairs_total,
              uninterrupted.status().repairs_total)
        << "seed " << seed;
  }
}

TEST(Serve, RestoreRejectsCorruptedSnapshots) {
  serve::ServeController a(small_config(), 3);
  for (int step = 0; step < 5; ++step) (void)a.tick();
  const std::string snapshot = a.checkpoint();

  // Truncation fails to parse.
  {
    serve::ServeController b(small_config(), 3);
    EXPECT_THROW(b.restore(snapshot.substr(0, snapshot.size() / 2)),
                 util::JsonError);
  }
  // A single flipped payload character breaks the checksum.
  {
    std::string corrupted = snapshot;
    const std::size_t mask_pos = corrupted.find("\"churn_mask\":\"");
    ASSERT_NE(mask_pos, std::string::npos);
    char& bit = corrupted[mask_pos + 14];
    bit = bit == '1' ? '0' : '1';
    serve::ServeController b(small_config(), 3);
    EXPECT_THROW(b.restore(corrupted), util::JsonError);
  }
  // Unknown format tag.
  {
    serve::ServeController b(small_config(), 3);
    EXPECT_THROW(b.restore(R"({"format":"bogus","checksum":"00"})"),
                 util::JsonError);
  }
  // Checksum field stripped.
  {
    util::Json payload = util::Json::parse(snapshot);
    payload.as_object().erase("checksum");
    serve::ServeController b(small_config(), 3);
    EXPECT_THROW(b.restore(payload.dump(-1)), util::JsonError);
  }
  // Valid snapshot, wrong seed: the guard hash refuses it.
  {
    serve::ServeController b(small_config(), 4);
    EXPECT_THROW(b.restore(snapshot), util::JsonError);
  }
}

// Inject the adversarial cycling rule as the repair rule. The controller
// must complete the run (never hang), catch the non-descending repairs via
// the potential watchdog, trip the breaker and fall back to the
// last-known-good profile.
TEST(Serve, WatchdogContainsCyclingRepairRule) {
  serve::ServeConfig config = small_config();
  config.repair_rule = core::UpdateRule::kCycleProbe;
  config.repair_rounds_per_event = 64;
  config.watchdog_suspect_moves = 32;
  config.watchdog_strike_limit = 2;
  config.watchdog_cooldown_ticks = 4;
  serve::ServeController controller(config, 5);
  for (int step = 0; step < 80; ++step) (void)controller.tick();

  const serve::ServeStatus& status = controller.status();
  EXPECT_EQ(status.ticks, 80u);
  EXPECT_GT(status.events_total, 0u);
  EXPECT_GE(status.watchdog_strikes, config.watchdog_strike_limit);
  EXPECT_GE(status.breaker_trips, 1u);
  EXPECT_GE(status.lkg_restores, 1u);
  // The fallback must stay structurally valid: allocated users point at
  // real servers.
  for (const core::ChannelSlot& slot : controller.allocation()) {
    if (slot.allocated()) {
      EXPECT_LT(slot.server, controller.instance().server_count());
    }
  }
}

TEST(Serve, SolverThreadCountDoesNotChangeTrajectory) {
  serve::ServeConfig serial = small_config();
  serial.solver_threads = 1;
  serve::ServeConfig threaded = small_config();
  threaded.solver_threads = 4;
  serve::ServeController a(serial, 13);
  serve::ServeController b(threaded, 13);
  for (int step = 0; step < 12; ++step) {
    (void)a.tick();
    (void)b.tick();
    ASSERT_EQ(a.trajectory_hash(), b.trajectory_hash()) << "tick " << step;
  }
}

// Fault-free, churn-free serving must stay essentially non-degraded: the
// only events are stranded walkers and periodic sigma refreshes, and each
// repairs to convergence within its budget.
TEST(Serve, FaultFreeRunStaysHealthy) {
  serve::ServeConfig config = small_config();
  config.churn_enabled = false;
  config.faults = fault::FaultProfile{};
  serve::ServeController controller(config, 17);
  for (int step = 0; step < 40; ++step) (void)controller.tick();
  const serve::ServeStatus& status = controller.status();
  EXPECT_EQ(status.breaker_trips, 0u);
  // Acceptance gate: degraded-time fraction < 5% fault-free.
  EXPECT_LT(status.degraded_ticks * 20, status.ticks);
}

TEST(Serve, FlashFailureIsRepairedAndRecoveryTimed) {
  serve::ServeConfig config = small_config();
  config.churn_enabled = false;
  config.faults = fault::FaultProfile{};
  config.flash_failure_tick = 8;
  config.flash_failure_fraction = 0.4;
  config.flash_failure_duration_ticks = 6;
  // Starve the per-event budgets so healing a mass failure takes several
  // ticks and the degraded window is observable.
  config.repair_rounds_per_event = 2;
  config.repair_placements_per_event = 2;
  config.backlog_drain_per_tick = 1;
  serve::ServeController controller(config, 23);
  bool saw_degraded = false;
  for (int step = 0; step < 50; ++step) {
    const serve::TickReport report = controller.tick();
    if (report.degraded) saw_degraded = true;
  }
  const serve::ServeStatus& status = controller.status();
  EXPECT_TRUE(saw_degraded);
  EXPECT_GT(status.events_total, 0u);
  // Recovery completed and was timed.
  EXPECT_GT(status.recovery_ticks, 0u);
  EXPECT_LT(status.recovery_ticks, 40u);
  // After recovery with every server back, no user may still be parked on
  // an unreachable slot.
  for (std::size_t j = 0; j < controller.allocation().size(); ++j) {
    const core::ChannelSlot& slot = controller.allocation()[j];
    if (slot.allocated()) {
      EXPECT_LT(slot.server, controller.instance().server_count());
    }
  }
}

}  // namespace
