// Data-migration accounting between successive delivery profiles. When the
// system re-plans sigma, new replicas must be transferred from the nearest
// existing replica (or the cloud); removed replicas are free. The plan's
// traffic and transfer time quantify the cost of re-optimisation — the
// trade-off the re-solve-period ablation sweeps.
#pragma once

#include <cstddef>
#include <vector>

#include "core/strategy.hpp"
#include "model/instance.hpp"

namespace idde::dynamic {

struct MigrationStep {
  std::size_t item = 0;
  std::size_t to_server = 0;
  /// Source server, or kFromCloud.
  std::size_t from_server = 0;
  double transfer_seconds = 0.0;
  static constexpr std::size_t kFromCloud = static_cast<std::size_t>(-1);
};

struct MigrationPlan {
  std::vector<MigrationStep> steps;
  double total_mb = 0.0;
  double total_transfer_seconds = 0.0;  ///< sum, i.e. serialised transfers
  std::size_t cloud_fetches = 0;
};

/// Computes the cheapest way to realise `next` starting from `previous`:
/// each newly placed replica is sourced from the nearest server that held
/// the item under `previous` (else the cloud).
[[nodiscard]] MigrationPlan plan_migration(
    const model::ProblemInstance& instance,
    const core::DeliveryProfile& previous, const core::DeliveryProfile& next);

}  // namespace idde::dynamic
