# Empty dependencies file for ablation_game_rules.
# This may be replaced when dependencies are built.
