#!/usr/bin/env python3
"""Self-test for scan_build_gate.py against a synthetic plist results dir."""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

TESTS = Path(__file__).resolve().parent
GATE = TESTS.parent / "scan_build_gate.py"
RESULTS = TESTS / "fixtures" / "scan_build"

ENTRY_NULL = {"checker": "core.NullDereference", "file": "src/core/game.cpp",
              "hash": "f00dfeed01", "reason": "fixture: known false positive"}
ENTRY_DEAD = {"checker": "deadcode.DeadStores", "file": "src/util/json.cpp",
              "hash": "cafebabe02", "reason": "fixture: accepted dead store"}

_failures: list[str] = []


def check(name: str, ok: bool, detail: str = "") -> None:
    print(f"  {'ok' if ok else 'FAIL':4} {name}"
          + (f" — {detail}" if detail and not ok else ""))
    if not ok:
        _failures.append(name)


def run_gate(baseline: dict, *extra: str):
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as tmp:
        json.dump(baseline, tmp)
        path = tmp.name
    try:
        proc = subprocess.run(
            [sys.executable, str(GATE), "--results", str(RESULTS),
             "--root", "/work", "--baseline", path, *extra],
            capture_output=True, text=True)
    finally:
        Path(path).unlink()
    return proc.returncode, proc.stdout, proc.stderr


def main() -> int:
    print("scan_build_gate self-tests:")

    code, out, _ = run_gate({"entries": []})
    check("empty baseline: 2 new findings fail the gate", code == 1,
          f"exit={code}")
    check("new findings are listed",
          "core.NullDereference" in out and "deadcode.DeadStores" in out)

    code, out, _ = run_gate({"entries": [ENTRY_NULL, ENTRY_DEAD]})
    check("full baseline passes", code == 0, out)
    check("both findings baselined", "2 baselined" in out, out)

    stale = {"checker": "core.DivideZero", "file": "src/gone.cpp",
             "hash": "deadbeef99", "reason": "fixture: fixed long ago"}
    code, out, _ = run_gate({"entries": [ENTRY_NULL, ENTRY_DEAD, stale]})
    check("stale entry does not fail the gate", code == 0, out)
    check("stale entry is reported", "stale baseline entry" in out, out)

    bad = {"entries": [{"checker": "x", "file": "y", "hash": "z",
                        "reason": ""}]}
    code, _, err = run_gate(bad)
    check("missing reason exits 2", code == 2, f"exit={code}")
    check("error names the missing field", "reason" in err, err)

    with tempfile.TemporaryDirectory() as tmpdir:
        skeleton_path = Path(tmpdir) / "skeleton.json"
        code, out, _ = run_gate({"entries": []},
                                "--write-baseline", str(skeleton_path))
        skeleton = json.loads(skeleton_path.read_text())
        check("--write-baseline exits 0", code == 0, out)
        check("skeleton has both findings", len(skeleton["entries"]) == 2)
        check("skeleton reasons demand editing",
              all(e["reason"].startswith("FILL IN")
                  for e in skeleton["entries"]))

    proc = subprocess.run(
        [sys.executable, str(GATE), "--results", "/no/such/dir"],
        capture_output=True, text=True)
    check("missing results dir exits 2", proc.returncode == 2)

    if _failures:
        print(f"{len(_failures)} check(s) failed: {_failures}")
        return 1
    print("all scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
