// Lightweight contract checking. IDDE_ASSERT is active in all build types:
// the simulation is deterministic and cheap relative to the cost of silently
// propagating a corrupted profile, so we never compile the checks out.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <source_location>
#include <string_view>

namespace idde::util {

[[noreturn]] inline void
assert_fail(std::string_view expr, std::string_view msg,
            const std::source_location& loc) {
  std::fprintf(stderr, "idde: assertion `%.*s` failed at %s:%u: %.*s\n",
               static_cast<int>(expr.size()), expr.data(), loc.file_name(),
               loc.line(), static_cast<int>(msg.size()), msg.data());
  std::abort();
}

}  // namespace idde::util

#define IDDE_ASSERT(cond, msg)                                     \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::idde::util::assert_fail(#cond, (msg),                      \
                                std::source_location::current());  \
    }                                                              \
  } while (false)

// Precondition/postcondition aliases, per the Core Guidelines' Expects()
// and Ensures() spelling (I.6 / I.8).
#define IDDE_EXPECTS(cond) IDDE_ASSERT(cond, "precondition violated")
#define IDDE_ENSURES(cond) IDDE_ASSERT(cond, "postcondition violated")
