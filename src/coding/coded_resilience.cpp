#include "coding/coded_resilience.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "coding/coded_planner.hpp"
#include "coding/coded_resolver.hpp"
#include "util/assert.hpp"

namespace idde::coding {

fault::ResilienceReport evaluate_coded_resilience(
    const model::ProblemInstance& instance, const CodedStrategy& strategy,
    const fault::FaultPlan& plan, fault::RepairPolicy policy) {
  fault::ResilienceReport report;
  report.fault_free_latency_ms = coded_average_latency_ms(
      instance, strategy.allocation, strategy.delivery,
      strategy.collaborative_delivery);
  if (plan.inert()) {
    // Zero-cost-when-disabled contract: identical numbers, no injector.
    report.degraded_latency_ms = report.fault_free_latency_ms;
    report.availability = 1.0;
    report.tier_fraction = {1.0, 0.0, 0.0};
    report.epochs = 1;
    return report;
  }

  const double horizon = plan.horizon_s();
  IDDE_EXPECTS(horizon > 0.0);
  const bool corruption = plan.replica_corruption_prob() > 0.0;
  const CodedRepairPlanner::ReplicaLost replica_lost =
      corruption ? CodedRepairPlanner::ReplicaLost(
                       [&plan](std::size_t i, std::size_t k) {
                         return plan.replica_corrupted(i, k);
                       })
                 : CodedRepairPlanner::ReplicaLost{};
  CodedRepairPlanner repairer(instance);
  CodedResolver resolver(instance);
  const auto& requests = instance.requests();
  const std::size_t request_count = requests.total_requests();
  IDDE_EXPECTS(request_count > 0);

  double weighted_seconds = 0.0;
  std::array<double, 3> tier_weight{};
  std::vector<std::size_t> degraded_hosts;
  std::vector<std::size_t> reference_hosts;

  const fault::FaultInjector injector(instance, plan);
  for (std::size_t e = 0; e < injector.epoch_count(); ++e) {
    const fault::AvailabilitySnapshot& snap = injector.epoch(e);
    const double weight = std::min(snap.end_s, horizon) - snap.start_s;
    if (weight <= 0.0) continue;
    ++report.epochs;

    const CodedDeliveryProfile* sigma = &strategy.delivery;
    CodedRepairResult healed{
        CodedDeliveryProfile(instance, strategy.delivery.config()), 0, 0,
        0.0};
    const bool repair_active =
        policy == fault::RepairPolicy::kGreedy && (!snap.all_up || corruption);
    if (repair_active) {
      healed = repairer.replan(strategy.allocation, strategy.delivery,
                               snap.server_up, replica_lost,
                               strategy.collaborative_delivery);
      report.lost_placements += healed.lost_placements;
      report.repair_placements += healed.repair_placements;
      sigma = &healed.delivery;
    }

    for (std::size_t j = 0; j < instance.user_count(); ++j) {
      const core::ChannelSlot slot = strategy.allocation[j];
      const std::size_t serving =
          slot.allocated() ? slot.server : core::ChannelSlot::kNone;
      for (const std::size_t k : requests.items_of(j)) {
        degraded_hosts.clear();
        for (const std::size_t host : sigma->hosts(k)) {
          if (!strategy.collaborative_delivery && host != serving) continue;
          // Corrupt fragments are unreadable even on a live server; a
          // repaired sigma already dropped them (replica_lost above).
          if (!repair_active && corruption &&
              plan.replica_corrupted(host, k)) {
            continue;
          }
          degraded_hosts.push_back(host);
        }
        // The tier reference is always the *original* sigma in the
        // fault-free world, even when a repair swapped fragments in.
        reference_hosts.clear();
        for (const std::size_t host : strategy.delivery.hosts(k)) {
          if (!strategy.collaborative_delivery && host != serving) continue;
          reference_hosts.push_back(host);
        }
        const CodedDecision decision = resolver.resolve(
            degraded_hosts, serving, instance.data(k).size_mb,
            strategy.delivery.item_fragment_mb(k),
            strategy.delivery.config().k, snap.server_up, &snap.costs,
            reference_hosts);
        weighted_seconds += weight * decision.seconds;
        tier_weight[static_cast<std::size_t>(decision.tier)] += weight;
      }
    }
  }

  const double total_mass = horizon * static_cast<double>(request_count);
  report.degraded_latency_ms = weighted_seconds / total_mass * 1e3;
  for (std::size_t t = 0; t < tier_weight.size(); ++t) {
    report.tier_fraction[t] = tier_weight[t] / total_mass;
  }
  report.availability = report.tier_fraction[0];
  return report;
}

}  // namespace idde::coding
