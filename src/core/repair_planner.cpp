#include "core/repair_planner.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace idde::core {

namespace {

constexpr double kMinGain = 1e-12;

}  // namespace

RepairPlanner::RepairPlanner(const model::ProblemInstance& instance)
    : instance_(&instance) {}

RepairResult RepairPlanner::replan(const AllocationProfile& allocation,
                                   const DeliveryProfile& sigma,
                                   std::span<const std::uint8_t> server_up,
                                   const ReplicaLost& replica_lost,
                                   bool collaborative,
                                   std::size_t max_placements) {
  const model::ProblemInstance& instance = *instance_;
  IDDE_EXPECTS(allocation.size() == instance.user_count());
  IDDE_EXPECTS(server_up.empty() || server_up.size() == instance.server_count());

  IDDE_OBS_SPAN("repair.replan");
  std::size_t candidates_scanned = 0;

  const auto up = [&](std::size_t server) {
    return server_up.empty() || server_up[server] != 0;
  };
  const auto lost = [&](std::size_t server, std::size_t item) {
    return replica_lost && replica_lost(server, item);
  };

  // Users on dead servers have no radio channel for the outage: their
  // requests go cloud-direct and must not attract repair placements.
  effective_.assign(allocation.begin(), allocation.end());
  for (ChannelSlot& slot : effective_) {
    if (slot.allocated() && !up(slot.server)) slot = kUnallocated;
  }

  RepairResult result{DeliveryProfile(instance), 0, 0, 0.0};
  if (evaluator_.has_value()) {
    evaluator_->reset(effective_, collaborative);
  } else {
    evaluator_.emplace(instance, effective_, collaborative);
  }
  DeliveryEvaluator& evaluator = *evaluator_;

  // Keep what survived; count what did not.
  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    for (const std::size_t i : sigma.hosts(k)) {
      if (!up(i) || lost(i, k)) {
        ++result.lost_placements;
        continue;
      }
      evaluator.commit(i, k);
      result.delivery.place(i, k);
    }
  }

  // Resume the lazy greedy (Eq. 17 ratio) on the surviving servers. The
  // heap lives on the planner's member vector — push_heap/pop_heap run the
  // same sift operations std::priority_queue would, with no per-move
  // allocation once the capacity has grown to the instance's size.
  heap_.clear();
  heap_.reserve(instance.server_count() * instance.data_count());
  for (std::size_t i = 0; i < instance.server_count(); ++i) {
    if (!up(i)) continue;
    for (std::size_t k = 0; k < instance.data_count(); ++k) {
      if (lost(i, k) || !result.delivery.can_place(i, k)) continue;
      const double gain = evaluator.gain_seconds(i, k);
      ++candidates_scanned;
      if (gain > kMinGain) {
        heap_.push_back(Candidate{gain / instance.data(k).size_mb, i, k});
        std::push_heap(heap_.begin(), heap_.end());
      }
    }
  }
  while (!heap_.empty() && result.repair_placements < max_placements) {
    const Candidate top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    if (!result.delivery.can_place(top.server, top.item)) continue;
    const double gain = evaluator.gain_seconds(top.server, top.item);
    ++candidates_scanned;
    if (gain <= kMinGain) continue;
    const double ratio = gain / instance.data(top.item).size_mb;
    if (!heap_.empty() && ratio < heap_.front().ratio) {
      heap_.push_back(Candidate{ratio, top.server, top.item});
      std::push_heap(heap_.begin(), heap_.end());
      continue;
    }
    evaluator.commit(top.server, top.item);
    result.delivery.place(top.server, top.item);
    ++result.repair_placements;
    result.recovered_gain_seconds += gain;
  }

  IDDE_OBS_COUNT("repair.replans_total", 1);
  IDDE_OBS_COUNT("repair.candidates_scanned_total", candidates_scanned);
  IDDE_OBS_COUNT("repair.placements_total", result.repair_placements);
  IDDE_OBS_COUNT("repair.lost_placements_total", result.lost_placements);
#if IDDE_OBS
  if (obs::enabled()) {
    // Eq. 6 budget utilisation of the healed plan, surviving servers only.
    obs::Histogram& utilization = obs::MetricsRegistry::global().histogram(
        "repair.budget_utilization");
    for (std::size_t i = 0; i < instance.server_count(); ++i) {
      if (!up(i)) continue;
      const double capacity = instance.server(i).storage_mb;
      if (capacity <= 0.0) continue;
      utilization.record(1.0 - result.delivery.free_mb(i) / capacity);
    }
  }
#endif
  return result;
}

}  // namespace idde::core
