// Fixture: a file with nothing to report.
namespace fixture {

int add(int a, int b) { return a + b; }

}  // namespace fixture
