# Included from the top-level CMakeLists (not add_subdirectory) so that
# ${CMAKE_BINARY_DIR}/bench contains only the bench executables and
# `for b in build/bench/*; do $b; done` runs clean.
function(idde_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE idde_sim)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

function(idde_gbench name)
  idde_bench(${name})
  target_link_libraries(${name} PRIVATE benchmark::benchmark)
endfunction()

idde_bench(fig1_motivation)
idde_bench(fig3_servers)
idde_bench(fig4_users)
idde_bench(fig5_data)
idde_bench(fig6_density)
idde_bench(fig7_time)
idde_gbench(ablation_greedy)
idde_gbench(ablation_sinr)
idde_gbench(ablation_game_rules)

# Engine microbenchmarks (BENCH_*.json trajectories).
idde_bench(perf_game)
idde_bench(perf_kernels)

# Extension benches (paper future work).
idde_bench(ext_mobility)
target_link_libraries(ext_mobility PRIVATE idde_dynamic)
idde_bench(theory_checks)
idde_bench(ablation_propagation)
idde_bench(ext_refinement)
idde_bench(ext_contention)
target_link_libraries(ext_contention PRIVATE idde_des)
idde_bench(ext_resilience)
target_link_libraries(ext_resilience PRIVATE idde_des idde_fault)
idde_bench(ext_overload)
target_link_libraries(ext_overload PRIVATE idde_des idde_fault idde_qos idde_dynamic)
idde_bench(ext_serve)
target_link_libraries(ext_serve PRIVATE idde_serve)
idde_bench(ext_coding)
target_link_libraries(ext_coding PRIVATE idde_des idde_fault idde_coding)
idde_bench(ext_gray)
target_link_libraries(ext_gray PRIVATE idde_des idde_fault)
