// Phase tracing: nested RAII spans, a Chrome trace_event JSON exporter,
// and a flat per-phase rollup (count / total / quantiles per span name).
//
// Recording model: a ScopedSpan always measures wall-clock (it is the
// project's replacement for ad-hoc util::Stopwatch timing — callers may
// read elapsed_ms() even in fully disabled builds). What happens at span
// end is layered:
//   - obs::enabled():        the duration feeds the tracer's per-phase
//                            rollup aggregate (histogram + totals);
//   - obs::trace_enabled():  additionally, a complete ("ph":"X") event is
//                            appended to the calling thread's buffer for
//                            chrome://tracing / Perfetto export.
// Event buffers are per-thread (one util::Mutex each, uncontended except
// against an export) and owned by the tracer via shared_ptr, so a worker
// thread that exits before the export — the ThreadPool teardown case —
// leaves its events behind intact.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/config.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/mutex.hpp"
#include "util/table.hpp"

namespace idde::obs {

/// One finished span, chrome trace_event "complete" flavour.
struct TraceEvent {
  std::string name;
  std::string args;  ///< free-form detail, exported as args.detail
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& global();

  /// Records one finished span (called by ~ScopedSpan; `start` is the
  /// span's construction time). Rollup always, event buffer only when
  /// trace_enabled().
  void record(std::string_view name,
              std::chrono::steady_clock::time_point start, double duration_ms,
              std::string_view args) IDDE_EXCLUDES(rollup_mutex_, mutex_);

  /// Chrome trace_event document:
  /// {"displayTimeUnit":"ms","traceEvents":[{name,cat,ph,ts,dur,pid,tid,
  /// args},...]}. Events are sorted by ts for stable output.
  [[nodiscard]] util::Json chrome_trace() IDDE_EXCLUDES(mutex_);

  /// Writes chrome_trace() to `path`; returns false on I/O failure.
  bool write_chrome_trace(const std::string& path) IDDE_EXCLUDES(mutex_);

  /// Flat per-phase summary, one row per span name:
  /// phase | count | total ms | mean | p50 | p90 | p99 | max.
  [[nodiscard]] util::TextTable rollup_table() IDDE_EXCLUDES(rollup_mutex_);

  /// The same rollup as JSON: {name: {count,total_ms,mean_ms,p50,...}}.
  [[nodiscard]] util::Json rollup_json() IDDE_EXCLUDES(rollup_mutex_);

  /// Drops all buffered events and rollup aggregates and re-anchors the
  /// trace clock. Buffers cached by live threads are re-registered on
  /// their next event (epoch check), so reset is safe at any quiescent
  /// point — not concurrently with spans still ending.
  void reset() IDDE_EXCLUDES(rollup_mutex_, mutex_);

 private:
  struct ThreadBuffer {
    util::Mutex mutex;
    std::vector<TraceEvent> events IDDE_GUARDED_BY(mutex);
    std::uint32_t tid = 0;
  };

  struct PhaseAggregate {
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double max_ms = 0.0;
    Histogram histogram;  ///< of span durations, ms
  };

  /// The calling thread's buffer for the current epoch, registering a
  /// fresh one if the cached pointer is stale. The registry lock is held
  /// only for the buffer lookup; the caller appends events under the
  /// buffer's own mutex after both tracer locks are released.
  [[nodiscard]] std::shared_ptr<ThreadBuffer> local_buffer_locked()
      IDDE_REQUIRES(mutex_);

  // Two capabilities so the hot rollup update (every span end when obs is
  // enabled) never contends with exports or buffer-registry traffic:
  //   rollup_mutex_  the per-phase aggregates;
  //   mutex_         the buffer registry, epoch, and trace-clock origin.
  // Lock order: rollup_mutex_ -> mutex_. record() keeps rollup_mutex_ held
  // across the nested registry lookup so one span's (rollup sample, trace
  // event) pair stays atomic with respect to reset(), which takes both in
  // the same order.
  mutable util::Mutex mutex_;
  mutable util::Mutex rollup_mutex_ IDDE_ACQUIRED_BEFORE(mutex_);
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ IDDE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<PhaseAggregate>, std::less<>> rollup_
      IDDE_GUARDED_BY(rollup_mutex_);
  std::uint64_t epoch_ IDDE_GUARDED_BY(mutex_) = 1;
  std::chrono::steady_clock::time_point origin_ IDDE_GUARDED_BY(mutex_) =
      std::chrono::steady_clock::now();
};

/// RAII phase span. Cheap when telemetry is off: the constructor snapshots
/// the runtime switches once; a disabled span is a steady_clock read.
class ScopedSpan {
 public:
  /// `name` must outlive the span (string literals; a caller-scoped
  /// std::string for dynamic names).
  explicit ScopedSpan(std::string_view name) : name_(name) {
#if IDDE_OBS
    recording_ = enabled();
#endif
    start_ = std::chrono::steady_clock::now();
  }

  /// As above with a detail string, exported as the event's args.detail.
  ScopedSpan(std::string_view name, std::string args) : ScopedSpan(name) {
#if IDDE_OBS
    if (recording_) args_ = std::move(args);
#else
    (void)args;
#endif
  }

  ~ScopedSpan() {
#if IDDE_OBS
    if (recording_) {
      Tracer::global().record(name_, start_, elapsed_ms(), args_);
    }
#endif
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Wall-clock since construction — works regardless of any toggle, so
  /// spans can replace Stopwatch where the elapsed time is a result.
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// Attaches/overrides the args detail after construction (e.g. once a
  /// result count is known). No-op unless the span is recording.
  void set_args(std::string args) {
#if IDDE_OBS
    if (recording_) args_ = std::move(args);
#else
    (void)args;
#endif
  }

 private:
  std::string_view name_;
  std::chrono::steady_clock::time_point start_;
#if IDDE_OBS
  std::string args_;
  bool recording_ = false;
#endif
};

}  // namespace idde::obs
