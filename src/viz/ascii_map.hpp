// ASCII rendering of an instance: servers, coverage footprints, users and
// (optionally) the user-allocation assignment. Meant for quick debugging
// and documentation — `examples/draw_city` prints the synthetic EUA layout.
#pragma once

#include <string>

#include "core/strategy.hpp"
#include "model/instance.hpp"

namespace idde::viz {

struct MapOptions {
  std::size_t width_chars = 72;
  std::size_t height_chars = 28;
  bool show_coverage = true;  ///< shade cells inside any coverage disc
  /// With an allocation, users are drawn as the letter of their serving
  /// server ('a' + server % 26); without, as '+'.
  const core::AllocationProfile* allocation = nullptr;
};

/// Renders the instance to a newline-separated character grid with legend.
/// Glyph precedence per cell: server ('#') > user > coverage shade ('.').
[[nodiscard]] std::string render_map(const model::ProblemInstance& instance,
                                     const MapOptions& options = {});

}  // namespace idde::viz
