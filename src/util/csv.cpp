#include "util/csv.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace idde::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
  IDDE_EXPECTS(!header.empty());
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  IDDE_EXPECTS(fields.size() == columns_);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(std::string_view value) {
  cells_.emplace_back(value);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  cells_.emplace_back(buf);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(long long value) {
  cells_.emplace_back(std::to_string(value));
  return *this;
}

CsvWriter::RowBuilder::~RowBuilder() { writer_.row(cells_); }

}  // namespace idde::util
