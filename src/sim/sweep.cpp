#include "sim/sweep.hpp"

#include "coding/coded_planner.hpp"
#include "coding/coded_resilience.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace idde::sim {

std::vector<PointResult> run_sweep(
    const std::vector<SweepPoint>& points,
    const std::vector<core::ApproachPtr>& approaches,
    const SweepOptions& options) {
  IDDE_EXPECTS(options.repetitions > 0);
  IDDE_EXPECTS(!approaches.empty());

  util::ThreadPool pool(options.threads);
  std::vector<PointResult> results;
  results.reserve(points.size());

  for (std::size_t p = 0; p < points.size(); ++p) {
    const SweepPoint& point = points[p];
    IDDE_OBS_SPAN_ARGS("sweep.point", point.label);
    const model::InstanceBuilder builder(point.params);

    // Per-(approach, repetition) samples.
    const std::size_t a_count = approaches.size();
    const auto reps = static_cast<std::size_t>(options.repetitions);
    const bool faults_active =
        options.fault_profile != nullptr && !options.fault_profile->inert();
    // Each repetition stages its samples into a disjoint slot; the fold
    // into RunningStats happens serially after the join, in rep order, so
    // the accumulated floats are bit-identical for any thread count.
    const bool coding_active = options.coding != nullptr;
    IDDE_EXPECTS(!coding_active || options.coding->valid());
    std::vector<std::vector<RunRecord>> rep_records(reps);
    std::vector<std::vector<fault::ResilienceReport>> rep_reports(reps);
    std::vector<std::vector<double>> rep_coded_latency(reps);
    std::vector<std::vector<fault::ResilienceReport>> rep_coded_reports(reps);

    util::parallel_for(pool, reps, [&](std::size_t rep) {
      // Instance seed depends only on (point, repetition): all approaches
      // are compared on the same instance.
      const std::uint64_t seed =
          options.base_seed + 1000003ULL * p + 17ULL * rep;
      const model::ProblemInstance instance = builder.build(seed);
      std::vector<RunRecord> records;
      records.reserve(a_count);
      std::vector<fault::ResilienceReport> reports(a_count);
      std::vector<double> coded_latency(a_count, 0.0);
      std::vector<fault::ResilienceReport> coded_reports(a_count);
      fault::FaultPlan plan;
      if (faults_active) {
        // Plan seed depends only on (point, repetition) too: every
        // approach degrades through the same fault schedule.
        plan = fault::FaultPlan::generate(instance, *options.fault_profile,
                                          seed ^ options.fault_seed_offset);
      }
      std::optional<coding::CodedGreedyPlanner> coded_planner;
      if (coding_active) coded_planner.emplace(instance);
      for (std::size_t a = 0; a < a_count; ++a) {
        // One cell = (point, approach, repetition); the args string makes
        // the trace timeline navigable in Perfetto.
        IDDE_OBS_SPAN_ARGS("sweep.cell",
                           point.label + " / " + approaches[a]->name());
        util::Rng rng(seed ^ (0xabcd0000ULL + a));
        if (!faults_active && !coding_active) {
          records.push_back(run_approach(instance, *approaches[a], rng));
          continue;
        }
        std::optional<core::Strategy> strategy;
        records.push_back(
            run_approach(instance, *approaches[a], rng, false, &strategy));
        if (faults_active) {
          reports[a] = fault::evaluate_resilience(instance, *strategy, plan,
                                                  options.repair_policy);
        }
        if (coding_active) {
          // Same allocation, coded delivery plane: the coded column isolates
          // the effect of fragmenting sigma while the game-side alpha stays
          // the approach's own.
          coding::CodedPlanResult coded = coded_planner->plan(
              strategy->allocation, *options.coding,
              strategy->collaborative_delivery);
          coded_latency[a] = coding::coded_average_latency_ms(
              instance, strategy->allocation, coded.delivery,
              strategy->collaborative_delivery);
          if (faults_active) {
            coding::CodedStrategy coded_strategy(strategy->allocation,
                                                 std::move(coded.delivery));
            coded_strategy.collaborative_delivery =
                strategy->collaborative_delivery;
            coded_strategy.approach_name = strategy->approach_name;
            coded_reports[a] = coding::evaluate_coded_resilience(
                instance, coded_strategy, plan, options.repair_policy);
          }
        }
      }
      rep_records[rep] = std::move(records);
      rep_reports[rep] = std::move(reports);
      rep_coded_latency[rep] = std::move(coded_latency);
      rep_coded_reports[rep] = std::move(coded_reports);
    });

    std::vector<util::RunningStats> rate(a_count), latency(a_count),
        time(a_count), degraded(a_count), availability(a_count),
        coded_lat(a_count), coded_degraded(a_count), coded_avail(a_count);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      for (std::size_t a = 0; a < a_count; ++a) {
        rate[a].add(rep_records[rep][a].metrics.avg_rate_mbps);
        latency[a].add(rep_records[rep][a].metrics.avg_latency_ms);
        time[a].add(rep_records[rep][a].solve_ms);
        if (faults_active) {
          degraded[a].add(rep_reports[rep][a].degraded_latency_ms);
          availability[a].add(rep_reports[rep][a].availability);
        }
        if (coding_active) {
          coded_lat[a].add(rep_coded_latency[rep][a]);
          if (faults_active) {
            coded_degraded[a].add(rep_coded_reports[rep][a].degraded_latency_ms);
            coded_avail[a].add(rep_coded_reports[rep][a].availability);
          }
        }
      }
    }

    PointResult point_result;
    point_result.label = point.label;
    for (std::size_t a = 0; a < a_count; ++a) {
      point_result.cells.push_back(CellResult{
          .approach = approaches[a]->name(),
          .rate_mbps = util::summarize(rate[a]),
          .latency_ms = util::summarize(latency[a]),
          .solve_ms = util::summarize(time[a]),
          .degraded_latency_ms = util::summarize(degraded[a]),
          .availability = util::summarize(availability[a]),
          .coded_latency_ms = util::summarize(coded_lat[a]),
          .coded_degraded_latency_ms = util::summarize(coded_degraded[a]),
          .coded_availability = util::summarize(coded_avail[a]),
      });
    }
    if (options.on_point) options.on_point(point_result);
    results.push_back(std::move(point_result));
  }
  return results;
}

std::vector<PointResult> run_paper_sweep(const std::vector<SweepPoint>& points,
                                         const SweepOptions& options) {
  const auto approaches =
      make_paper_approaches(options.ip_budget_ms, options.game_threads);
  return run_sweep(points, approaches, options);
}

}  // namespace idde::sim
