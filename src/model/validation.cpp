#include "model/validation.hpp"

#include <algorithm>

#include "geo/point.hpp"
#include "util/format.hpp"

namespace idde::model {

std::vector<std::string> validate_instance(const ProblemInstance& instance) {
  std::vector<std::string> problems;
  const auto complain = [&problems](std::string message) {
    problems.push_back(std::move(message));
  };

  if (!instance.graph().is_connected()) {
    complain("edge network is not connected");
  }

  for (std::size_t i = 0; i < instance.server_count(); ++i) {
    const EdgeServer& s = instance.server(i);
    if (s.coverage_radius_m <= 0.0) {
      complain(util::format("server {} has non-positive coverage radius", i));
    }
    if (s.storage_mb < 0.0) {
      complain(util::format("server {} has negative storage", i));
    }
  }

  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    // Coverage sets must agree with geometry.
    for (const std::size_t i : instance.covering_servers(j)) {
      const double d = geo::distance_m(instance.server(i).position,
                                     instance.user(j).position);
      if (d > instance.server(i).coverage_radius_m + 1e-9) {
        complain(util::format(
            "user {} listed as covered by server {} but is {} m away", j, i,
            util::fixed(d, 1)));
      }
    }
    if (instance.requests().items_of(j).empty() &&
        instance.data_count() > 0) {
      complain(util::format("user {} requests no data", j));
    }
  }

  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    if (instance.data(k).size_mb <= 0.0) {
      complain(util::format("data {} has non-positive size", k));
    }
  }
  return problems;
}

CoverageStats coverage_stats(const ProblemInstance& instance) {
  CoverageStats stats;
  double total = 0.0;
  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    const std::size_t c = instance.covering_servers(j).size();
    total += static_cast<double>(c);
    stats.max_coverage = std::max(stats.max_coverage, c);
    if (c == 0) ++stats.uncovered_users;
  }
  if (instance.user_count() > 0) {
    stats.mean_coverage = total / static_cast<double>(instance.user_count());
  }
  return stats;
}

}  // namespace idde::model
