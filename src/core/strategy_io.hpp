// Strategy (de)serialisation: the user-allocation profile and the replica
// placements, so strategies can be archived next to their instances and
// re-evaluated later (tools/idde_tool drives this end-to-end).
#pragma once

#include <string>

#include "core/strategy.hpp"
#include "model/instance.hpp"
#include "util/json.hpp"

namespace idde::core {

[[nodiscard]] util::Json strategy_to_json(const Strategy& strategy);

/// Rebuilds a strategy against `instance`. Throws util::JsonError on
/// malformed input, out-of-range indices, and placements that violate the
/// storage constraint of this instance (checked via can_place before
/// applying) — bad documents never abort or load silently wrong.
[[nodiscard]] Strategy strategy_from_json(
    const model::ProblemInstance& instance, const util::Json& json);

[[nodiscard]] std::string strategy_to_string(const Strategy& strategy,
                                             int indent = -1);
[[nodiscard]] Strategy strategy_from_string(
    const model::ProblemInstance& instance, const std::string& text);

}  // namespace idde::core
