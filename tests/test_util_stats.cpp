// RunningStats / summaries / percentile tests.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/stats.hpp"

namespace {

using idde::util::Estimate;
using idde::util::RunningStats;

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // population var = 4 => sample var = 4 * 8/7
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats a;
  RunningStats b;
  const std::vector<double> xs{1.0, 2.5, -3.0, 8.0, 0.0, 4.2, 4.2, -1.1};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    all.add(xs[i]);
    (i < 3 ? a : b).add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  RunningStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.mean(), mean);
}

TEST(Summarize, HalfWidthShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : -1.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : -1.0);
  const Estimate es = summarize(small);
  const Estimate el = summarize(large);
  EXPECT_GT(es.half_width, el.half_width);
  EXPECT_EQ(el.n, 1000u);
}

TEST(Summarize, SpanOverload) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const Estimate e = idde::util::summarize(xs);
  EXPECT_DOUBLE_EQ(e.mean, 2.0);
  EXPECT_EQ(e.n, 3u);
}

TEST(Percentile, MedianOfOddCount) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(idde::util::percentile(xs, 50.0), 2.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> xs{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(idde::util::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(idde::util::percentile(xs, 100.0), 9.0);
}

TEST(Percentile, InterpolatesBetweenValues) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(idde::util::percentile(xs, 25.0), 2.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(idde::util::percentile(xs, 37.0), 7.0);
  EXPECT_DOUBLE_EQ(idde::util::percentile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(idde::util::percentile(xs, 100.0), 7.0);
}

TEST(Percentile, DuplicatesAreExact) {
  // Equal-endpoint interpolation must return the sample bit-for-bit, with
  // no (1-frac)*x + frac*x rounding residue.
  const std::vector<double> xs{4.2, 4.2, 4.2, 4.2, 4.2};
  for (const double p : {0.0, 12.5, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(idde::util::percentile(xs, p), 4.2);
  }
}

TEST(Percentile, ExactRankReturnsSample) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  // rank = p/100 * 4 lands exactly on an index at multiples of 25.
  EXPECT_EQ(idde::util::percentile(xs, 25.0), 2.0);
  EXPECT_EQ(idde::util::percentile(xs, 75.0), 4.0);
}

TEST(Percentile, InfiniteTailDoesNotPoisonFiniteQuantiles) {
  // A degraded route can contribute +inf latency. p=100 must be +inf, but
  // quantiles whose rank lands on the finite prefix must stay finite —
  // the old lerp produced NaN via 0 * inf at exact ranks.
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, inf};
  EXPECT_EQ(idde::util::percentile(xs, 100.0), inf);
  EXPECT_EQ(idde::util::percentile(xs, 75.0), 4.0);
  EXPECT_EQ(idde::util::percentile(xs, 50.0), 3.0);
  const std::vector<double> all_inf{inf, inf};
  EXPECT_EQ(idde::util::percentile(all_inf, 50.0), inf);
}

TEST(MeanOf, EmptyIsZero) {
  EXPECT_EQ(idde::util::mean_of({}), 0.0);
}

TEST(RelativeMetrics, GainAndReduction) {
  // ours=120 vs other=100: 20% gain.
  EXPECT_NEAR(idde::util::relative_gain(120.0, 100.0), 0.2, 1e-12);
  // ours=5ms vs other=20ms: 75% reduction.
  EXPECT_NEAR(idde::util::relative_reduction(5.0, 20.0), 0.75, 1e-12);
  // zero denominators do not explode.
  EXPECT_EQ(idde::util::relative_gain(1.0, 0.0), 0.0);
  EXPECT_EQ(idde::util::relative_reduction(1.0, 0.0), 0.0);
}

}  // namespace
