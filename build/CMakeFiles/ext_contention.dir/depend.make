# Empty dependencies file for ext_contention.
# This may be replaced when dependencies are built.
