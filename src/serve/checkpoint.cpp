#include "serve/checkpoint.hpp"

#include <bit>

#include "util/format.hpp"

namespace idde::serve {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr char kHexDigits[] = "0123456789abcdef";

}  // namespace

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = kFnvOffsetBasis;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t fnv1a_fold(std::uint64_t hash, std::uint64_t word) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (word >> (byte * 8)) & 0xffULL;
    hash *= kFnvPrime;
  }
  return hash;
}

std::string u64_to_hex(std::uint64_t value) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

std::uint64_t hex_to_u64(std::string_view hex, std::string_view what) {
  if (hex.size() != 16) {
    throw util::JsonError(
        util::format("{}: expected 16 hex digits, got {}", what, hex.size()));
  }
  std::uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw util::JsonError(
          util::format("{}: invalid hex digit '{}'", what, c));
    }
  }
  return value;
}

util::Json double_to_bits(double value) {
  return util::Json(u64_to_hex(std::bit_cast<std::uint64_t>(value)));
}

double bits_to_double(const util::Json& value, std::string_view what) {
  return std::bit_cast<double>(hex_to_u64(value.as_string(), what));
}

std::string seal_checkpoint(util::Json payload, int indent) {
  util::JsonObject& object = payload.as_object();
  object.erase("checksum");
  object.insert_or_assign("format", util::Json(std::string(kCheckpointFormat)));
  const std::uint64_t checksum = fnv1a(payload.dump(-1));
  object.insert_or_assign("checksum", util::Json(u64_to_hex(checksum)));
  return payload.dump(indent);
}

util::Json open_checkpoint(std::string_view text) {
  util::Json payload = util::Json::parse(text);
  if (!payload.is_object()) {
    throw util::JsonError("checkpoint: top-level value must be an object");
  }
  const util::Json* format = payload.find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != kCheckpointFormat) {
    throw util::JsonError(
        util::format("checkpoint: unknown format (expected {})",
                     kCheckpointFormat));
  }
  const util::Json* checksum = payload.find("checksum");
  if (checksum == nullptr || !checksum->is_string()) {
    throw util::JsonError("checkpoint: missing checksum");
  }
  const std::uint64_t recorded =
      hex_to_u64(checksum->as_string(), "checkpoint checksum");
  payload.as_object().erase("checksum");
  const std::uint64_t actual = fnv1a(payload.dump(-1));
  if (actual != recorded) {
    throw util::JsonError(util::format(
        "checkpoint: checksum mismatch (recorded {}, computed {})",
        u64_to_hex(recorded), u64_to_hex(actual)));
  }
  return payload;
}

}  // namespace idde::serve
