// Phase 1 of IDDE-G: the IDDE-U user-allocation game (Algorithm 1, lines
// 5-21). Best-response dynamics over the benefit function of Eq. 12.
//
// The paper's update rule lets every user submit an improving move each
// round and applies one winner's move. We implement that rule
// (kBestImprovement: the largest benefit gain wins) plus two standard
// variants used by the ablation bench:
//   kFirstImprovement — the lowest-indexed improving user wins the round,
//   kAsyncSweep       — users best-respond sequentially within one sweep
//                       (many moves per round; rounds == sweeps).
// All three converge on potential-game instances; kAsyncSweep is the
// fastest wall-clock and kBestImprovement matches Algorithm 1 literally.
//
// Engine: by default the game runs *incrementally*. One applied move
// perturbs exactly two channel slots (the mover's old and new one — see
// radio::MoveDelta), so a user's cached best response stays exact unless
// the user covers the vacated or entered server, or is the mover itself.
// The engine keeps a dirty set seeded from InterferenceField::last_move()
// and ProblemInstance::covered_users(); clean users reuse their cached
// BestResponse with zero SINR work. Dirty users can be re-evaluated in
// parallel on a util::ThreadPool (the field is read-only between moves).
// Both knobs are pure caching/scheduling layers: for every update rule and
// any thread count the move sequence is bit-identical to the serial
// full-scan engine (`incremental = false`), which is retained as the
// oracle for tests and bench/perf_game.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "core/strategy.hpp"
#include "model/instance.hpp"
#include "radio/batch_eval.hpp"

namespace idde::core {

enum class UpdateRule {
  kBestImprovement,
  kFirstImprovement,
  kAsyncSweep,
  /// Adversarial validation rule: the lowest-indexed user with at least
  /// two candidate slots cycles through them round-robin regardless of
  /// benefit, so the dynamics never converge and the potential does not
  /// descend. Exists to exercise convergence watchdogs
  /// (serve::ServeController) end-to-end — never use it to solve.
  /// Always runs on the serial full-scan engine.
  kCycleProbe,
};

struct GameOptions {
  UpdateRule rule = UpdateRule::kBestImprovement;
  /// A move must improve the benefit by more than this to be applied;
  /// guards floating-point livelock.
  double improvement_epsilon = 1e-12;
  /// Hard cap on rounds (Theorem 4 guarantees finite convergence; the cap
  /// is a safety net, sized by the driver as ~O(M * candidates)).
  std::size_t max_rounds = 1'000'000;
  /// Optional restriction of each user's candidate servers to a subset of
  /// its coverage (used by DUP-G, which only considers servers caching the
  /// user's requested data). Must outlive the game; nullptr = full V_j.
  const std::vector<std::vector<std::size_t>>* candidate_servers = nullptr;
  /// Per-user move budget. Theorem 3's potential argument assumes
  /// homogeneous channel gains; with fully heterogeneous gains
  /// best-response dynamics can cycle, so each user is frozen after this
  /// many moves. Empirically users move 1-4 times before equilibrium, so
  /// the budget only engages on cycling instances.
  std::size_t max_moves_per_user = 32;
  /// Dirty-set caching of best responses (see file comment). Disable to
  /// get the original full-scan loop — the oracle the incremental path is
  /// validated against.
  bool incremental = true;
  /// Evaluate each user's candidate slots through the batched SoA kernel
  /// (radio::BatchEvaluator) instead of per-slot field.benefit() calls.
  /// Pure data-layout change: the batched kernel is bit-identical to the
  /// scalar path per slot (see batch_eval.hpp), so move sequences match
  /// for every engine, rule, and thread count. Disable to get the scalar
  /// per-slot oracle the batched kernel is validated against.
  bool batched = true;
  /// The caller runs the game under a deliberate work budget (max_rounds
  /// sized per event, as the serve controller does): hitting the round cap
  /// is then the expected partial-repair outcome, not a solver anomaly, so
  /// the round-cap warning is suppressed.
  bool budgeted = false;
  /// Worker threads for re-evaluating the dirty set: 1 = serial (default),
  /// 0 = hardware concurrency, n = exactly n workers. Only engages on the
  /// incremental path; the move sequence is identical for every value.
  /// Concurrency contract: workers share the field read-only (enforced by
  /// a version-counter assert around the fan-out) and write disjoint cache
  /// entries — see DESIGN.md §9; tests/test_concurrency_stress.cpp runs
  /// this under TSan, including whole solves racing on separate threads.
  std::size_t threads = 1;
};

struct GameResult {
  AllocationProfile allocation;
  std::size_t rounds = 0;
  std::size_t moves = 0;
  std::size_t benefit_evaluations = 0;
  bool converged = false;
  /// Users frozen by the per-user move budget (0 on potential-game
  /// instances; > 0 means the returned profile is only an approximate
  /// equilibrium).
  std::size_t frozen_users = 0;
  /// Benefit (Eq. 12) of each user at its final slot, 0 when unallocated.
  /// On the incremental path these come from the engine's cache, so tests
  /// can cross-check them against a from-scratch recomputation.
  std::vector<double> final_benefits;
};

class IddeUGame {
 public:
  explicit IddeUGame(const model::ProblemInstance& instance,
                     GameOptions options = {});

  /// Runs best-response dynamics from the all-unallocated profile to a
  /// Nash equilibrium (Definition 3).
  [[nodiscard]] GameResult run();

  /// Runs from a caller-supplied starting profile.
  [[nodiscard]] GameResult run_from(const AllocationProfile& start);

 private:
  struct BestResponse {
    ChannelSlot slot = kUnallocated;
    double benefit = 0.0;
  };

  /// Best candidate in delta_j over covering servers x channels. When
  /// `batch` is non-null the candidates are priced through the batched
  /// SoA kernel (one sweep, bit-identical values); otherwise per-slot
  /// field.benefit() calls — same scan order and tie-breaking either way.
  /// `evaluations` may be null when the caller does not track the count.
  [[nodiscard]] BestResponse best_response(
      const radio::InterferenceField& field, radio::BatchEvaluator* batch,
      std::size_t user, std::size_t* evaluations) const;

  /// The seed engine: re-evaluates every user each round. Oracle for the
  /// incremental path; selected with GameOptions::incremental = false.
  [[nodiscard]] GameResult run_full_scan(const AllocationProfile& start);

  /// Dirty-set (+ optional thread fan-out) engine; same move sequences.
  [[nodiscard]] GameResult run_incremental(const AllocationProfile& start);

  const model::ProblemInstance* instance_;
  GameOptions options_;
};

/// Definition 3 check: no user can unilaterally improve its benefit by more
/// than `epsilon`. Used by tests and the harness's self-checks.
[[nodiscard]] bool is_nash_equilibrium(const model::ProblemInstance& instance,
                                       const AllocationProfile& allocation,
                                       double epsilon = 1e-9);

}  // namespace idde::core
