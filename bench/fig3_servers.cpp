// Figure 3 — effectiveness in Set #1: R_avg and L_avg vs the number of
// edge servers N (20..50 step 5; M=200, K=5, density=1.0).
#include "figure_common.hpp"

int main() {
  return idde::bench::run_figure_set(idde::sim::paper_sets()[0], "fig3_set1");
}
