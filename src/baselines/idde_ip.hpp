// IDDE-IP — the time-capped exact benchmark (the paper feeds the Section
// 2.3 model to IBM CPLEX's CP Optimizer with a 100 s search cap; we run the
// in-repo anytime joint search instead, see DESIGN.md §5). The budget is
// configurable so CI runs stay fast: constructor argument, overridable via
// the IDDE_IP_BUDGET_MS environment variable.
#pragma once

#include "core/approach.hpp"
#include "solver/joint_search.hpp"

namespace idde::baselines {

class IddeIp final : public core::Approach {
 public:
  explicit IddeIp(double budget_ms = 200.0);

  [[nodiscard]] std::string name() const override { return "IDDE-IP"; }

  [[nodiscard]] core::Strategy solve(const model::ProblemInstance& instance,
                                     util::Rng& rng) const override;

  [[nodiscard]] double budget_ms() const noexcept { return budget_ms_; }

 private:
  double budget_ms_;
};

}  // namespace idde::baselines
