#include "net/graph.hpp"

#include <vector>

#include "util/assert.hpp"

namespace idde::net {

Graph::Graph(std::size_t node_count, const std::vector<Edge>& edges)
    : node_count_(node_count) {
  std::vector<std::size_t> degree(node_count_ + 1, 0);
  for (const Edge& e : edges) {
    IDDE_EXPECTS(e.from < node_count_ && e.to < node_count_);
    IDDE_EXPECTS(e.from != e.to);
    IDDE_EXPECTS(e.weight >= 0.0);
    ++degree[e.from + 1];
    ++degree[e.to + 1];
  }
  offsets_ = degree;
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  adjacency_.resize(edges.size() * 2);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges) {
    adjacency_[cursor[e.from]++] = Neighbor{e.to, e.weight};
    adjacency_[cursor[e.to]++] = Neighbor{e.from, e.weight};
  }
}

std::span<const Neighbor> Graph::neighbors(std::size_t node) const {
  IDDE_EXPECTS(node < node_count_);
  return {adjacency_.data() + offsets_[node],
          offsets_[node + 1] - offsets_[node]};
}

bool Graph::is_connected() const {
  if (node_count_ == 0) return true;
  std::vector<bool> seen(node_count_, false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t node = stack.back();
    stack.pop_back();
    for (const Neighbor& nb : neighbors(node)) {
      if (!seen[nb.node]) {
        seen[nb.node] = true;
        ++visited;
        stack.push_back(nb.node);
      }
    }
  }
  return visited == node_count_;
}

}  // namespace idde::net
