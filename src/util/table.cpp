#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace idde::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  IDDE_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  IDDE_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

TextTable::RowBuilder& TextTable::RowBuilder::add(std::string value) {
  cells_.push_back(std::move(value));
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::add(double value,
                                                  int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  cells_.emplace_back(buf);
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::add(long long value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

TextTable::RowBuilder::~RowBuilder() { table_.add_row(std::move(cells_)); }

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

}  // namespace idde::util
