"""Robustness pack: retry loops must be visibly bounded.

PR 5 set the convention — every retry path spends from a
`qos::RetryBudget`, checks an attempt cap, or runs under a deadline —
and the serve controller's backlog re-enqueue keeps it. A retry loop
with no bound is how a single flaky dependency turns into a retry storm
that outlives the incident, so the absence of a bound must be loud:

  unbounded-retry   a retry continuation (a retry/attempt counter
                    increment, or a backoff-delayed re-enqueue) in a file
                    that never references a retry bound. Recognised
                    bounds: RetryBudget / try_spend_retry / retry_budget,
                    max_retries / max_attempts / retry_limit /
                    attempt_cap, a deadline, or a direct comparison of
                    the attempt counter (`attempt < kMax`). The check is
                    file-granular on purpose: the budget guard usually
                    lives in a different function than the re-enqueue
                    site (serve::ServeController::enqueue_repair vs
                    drain_backlog is the canonical shape).

  unhedged-wait     a wait-for-completion loop (a `while`/`do` condition
                    watching pending / in-flight / completed state) in the
                    DES or serve layer of a file that never references a
                    hedge deadline, retry budget, or timeout. The gray-
                    failure PR made unhedged waits a liveness bug: a leg
                    stuck behind a slow-not-dead server parks the loop
                    forever unless *something* in the file can preempt it
                    (HedgeConfig deadline, retry budget, timeout, or an
                    epoch abort). File-granular like unbounded-retry: the
                    escape hatch legitimately lives in a sibling function.
"""

from __future__ import annotations

import re

from ..config import Config
from ..findings import Finding
from ..source import SourceFile

RULES = {
    "unbounded-retry": (
        "retry/backoff continuation in a file with no visible retry bound "
        "(RetryBudget, deadline, or attempt cap); bound the loop or "
        "justify it in the baseline"),
    "unhedged-wait": (
        "DES/serve wait-for-completion loop in a file that never "
        "references a hedge deadline, retry budget, or timeout; give the "
        "wait an escape hatch or justify it in the baseline"),
}

# A retry continuation being created: the counter moves forward...
RETRY_STEP = re.compile(
    r"\+\+\s*(?:[A-Za-z_]\w*(?:\.|->))*(?P<pre>retries|retry_count|attempts?)\b"
    r"|\b(?:[A-Za-z_]\w*(?:\.|->))*(?P<post>retries|retry_count|attempts?)"
    r"\s*(?:\+\+|\+=|\+\s*1\b)")
# ...or the work is re-enqueued after a backoff delay.
BACKOFF_ENQUEUE = re.compile(
    r"\b(?:\w+\s*(?:\.|->)\s*)?"
    r"(?:push|push_back|emplace|emplace_back|enqueue\w*|schedule\w*)"
    r"\s*\([^;]*backoff", re.DOTALL)

# Anything that bounds the retries, per the PR 5 vocabulary. Matched
# against stripped code, so a comment claiming a bound does not count.
BOUND_MARKER = re.compile(
    r"\bRetryBudget\b|\btry_spend_retry\b|\bretry_budget\b"
    r"|\bmax_retries\b|\bmax_attempts\b|\bretry_limit\b|\battempt_cap\b"
    r"|deadline", re.IGNORECASE)
# A direct comparison of the counter is an attempt cap (`attempt < 16`).
COUNTER_CAP = re.compile(
    r"\b(?:[A-Za-z_]\w*(?:\.|->))*(?:retries|retry_count|attempts?)\b"
    r"\s*(?:<=?|>=?)\s*[A-Za-z_0-9]")


# A loop blocked on delivery progress: `while`/`do` whose condition reads
# pending / in-flight / completion state. The single-line condition match
# is deliberate — the codebase's event loops keep the condition on the
# `while` line, and a multi-line condition still matches its first line.
WAIT_LOOP = re.compile(
    r"\b(?:while|do)\b\s*\([^)\n]*?"
    r"(?P<state>pending|in_flight|inflight|outstanding|unfinished"
    r"|completed|complete|remaining|in_progress|!\s*\w*done)\b")
# Anything that can preempt a stuck wait, per the gray-failure PR
# vocabulary. Matched against stripped code, so a comment claiming an
# escape hatch does not count.
HEDGE_MARKER = re.compile(
    r"\bhedge\w*\b|\bHedgeConfig\b|\bdeadline\w*\b"
    r"|\bRetryBudget\b|\btry_spend_retry\b|\bretry_budget\b"
    r"|\btimeout\w*\b|\bmax_retries\b|\bepoch_abort\w*\b",
    re.IGNORECASE)


def scan(sf: SourceFile, cfg: Config):
    findings: list[Finding] = []
    facts = {"suppressed": 0}
    findings += _scan_unbounded_retry(sf, cfg, facts)
    findings += _scan_unhedged_wait(sf, cfg, facts)
    return findings, facts


def _scan_unbounded_retry(sf: SourceFile, cfg: Config, facts: dict):
    findings: list[Finding] = []
    if not cfg.in_scope(sf.rel, cfg.retry_scope):
        return findings
    if BOUND_MARKER.search(sf.code) or COUNTER_CAP.search(sf.code):
        return findings

    seen: set[tuple[int, str]] = set()

    def report(line: int, key: str) -> None:
        if (line, key) in seen:
            return
        seen.add((line, key))
        if sf.allowed(line, "unbounded-retry"):
            facts["suppressed"] += 1
        else:
            findings.append(Finding(
                sf.rel, line, "unbounded-retry", key,
                f"`{key.split(':', 1)[1]}` advances a retry with no "
                "visible bound anywhere in this file: reference a "
                "RetryBudget, a deadline, or an attempt cap "
                "(or justify the exception in the baseline)"))

    for match in RETRY_STEP.finditer(sf.code):
        counter = match.group("pre") or match.group("post")
        report(sf.line_of(match.start()), f"retry:{counter}")
    for match in BACKOFF_ENQUEUE.finditer(sf.code):
        report(sf.line_of(match.start()), "retry:backoff-enqueue")
    return findings


def _scan_unhedged_wait(sf: SourceFile, cfg: Config, facts: dict):
    findings: list[Finding] = []
    if not cfg.in_scope(sf.rel, cfg.hedge_scope):
        return findings
    if HEDGE_MARKER.search(sf.code):
        return findings

    seen: set[tuple[int, str]] = set()
    for match in WAIT_LOOP.finditer(sf.code):
        line = sf.line_of(match.start())
        state = match.group("state")
        key = f"wait:{state}"
        if (line, key) in seen:
            continue
        seen.add((line, key))
        if sf.allowed(line, "unhedged-wait"):
            facts["suppressed"] += 1
        else:
            findings.append(Finding(
                sf.rel, line, "unhedged-wait", key,
                f"loop waits on `{state}` with no hedge deadline, retry "
                "budget, or timeout anywhere in this file: a slow-not-dead "
                "server parks this wait forever — add an escape hatch "
                "(or justify the exception in the baseline)"))
    return findings
