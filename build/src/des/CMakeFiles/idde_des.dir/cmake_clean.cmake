file(REMOVE_RECURSE
  "CMakeFiles/idde_des.dir/flow_sim.cpp.o"
  "CMakeFiles/idde_des.dir/flow_sim.cpp.o.d"
  "libidde_des.a"
  "libidde_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idde_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
