// Fault determinism contract (mirrors the PR 1 engine contract in
// test_game_incremental.cpp): identical seed + FaultPlan must yield
// bit-identical event sequences and metrics regardless of solver thread
// count — the fault layer introduces no nondeterminism of its own.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/idde_g.hpp"
#include "des/flow_sim.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "model/instance_builder.hpp"
#include "sim/paper.hpp"

namespace {

using namespace idde;

model::InstanceParams small_params() {
  model::InstanceParams p = sim::paper_default_params();
  p.server_count = 10;
  p.user_count = 50;
  p.data_count = 4;
  return p;
}

fault::FaultProfile busy_profile() {
  fault::FaultProfile profile;
  profile.horizon_s = 45.0;
  profile.server_mtbf_s = 15.0;
  profile.server_mttr_s = 5.0;
  profile.link_mtbf_s = 12.0;
  profile.link_mttr_s = 4.0;
  profile.cloud_mtbf_s = 30.0;
  profile.cloud_mttr_s = 3.0;
  profile.replica_corruption_prob = 0.05;
  return profile;
}

TEST(FaultDeterminism, PlanIsBitIdenticalForSameSeed) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto inst = model::make_instance(small_params(), seed);
    const auto profile = busy_profile();
    const auto a = fault::FaultPlan::generate(inst, profile, seed * 977);
    const auto b = fault::FaultPlan::generate(inst, profile, seed * 977);
    EXPECT_EQ(a.server_downtime(), b.server_downtime());
    EXPECT_EQ(a.link_downtime(), b.link_downtime());
    EXPECT_EQ(a.cloud_downtime(), b.cloud_downtime());
    EXPECT_EQ(a.edge_change_times(), b.edge_change_times());
    const auto c = fault::FaultPlan::generate(inst, profile, seed * 977 + 1);
    EXPECT_NE(a.server_downtime(), c.server_downtime());
  }
}

core::Strategy solve_with_threads(const model::ProblemInstance& inst,
                                  std::size_t threads, std::uint64_t seed) {
  core::IddeGOptions options;
  options.game.threads = threads;
  util::Rng rng(seed);
  return core::IddeG(options).solve(inst, rng);
}

// The full pipeline — solve, draw a plan, replay through the faulty DES —
// must be bit-identical between a 1-thread and a hardware-thread solve:
// the game engine already guarantees an identical equilibrium, and the
// fault layer (plan generation, epoch slicing, failover, retry loop) is
// single-threaded and seed-pure on top of it.
TEST(FaultDeterminism, PipelineIdenticalAcrossSolverThreadCounts) {
  for (std::uint64_t seed = 20; seed <= 22; ++seed) {
    const auto inst = model::make_instance(small_params(), seed);
    const auto plan =
        fault::FaultPlan::generate(inst, busy_profile(), seed ^ 0x4a17);
    ASSERT_FALSE(plan.inert());

    const auto serial = solve_with_threads(inst, 1, seed);
    const auto parallel = solve_with_threads(inst, 0, seed);  // hw threads

    des::FlowSimOptions options;
    options.arrival_window_s = 20.0;
    options.fault_plan = &plan;
    util::Rng rng_a(seed);
    util::Rng rng_b(seed);
    const auto a = des::FlowLevelSimulator(inst, options).run(serial, rng_a);
    const auto b =
        des::FlowLevelSimulator(inst, options).run(parallel, rng_b);

    ASSERT_EQ(a.flows.size(), b.flows.size());
    for (std::size_t f = 0; f < a.flows.size(); ++f) {
      EXPECT_EQ(a.flows[f].arrival_s, b.flows[f].arrival_s);
      EXPECT_EQ(a.flows[f].completion_s, b.flows[f].completion_s);
      EXPECT_EQ(a.flows[f].retries, b.flows[f].retries);
      EXPECT_EQ(a.flows[f].forced_cloud, b.flows[f].forced_cloud);
      EXPECT_EQ(a.flows[f].tier, b.flows[f].tier);
    }
    EXPECT_EQ(a.mean_duration_ms, b.mean_duration_ms);
    EXPECT_EQ(a.p99_duration_ms, b.p99_duration_ms);
    EXPECT_EQ(a.max_duration_ms, b.max_duration_ms);
    EXPECT_EQ(a.availability, b.availability);
    EXPECT_EQ(a.retry_count, b.retry_count);
    EXPECT_EQ(a.tier_counts, b.tier_counts);

    const auto ra = fault::evaluate_resilience(inst, serial, plan,
                                               fault::RepairPolicy::kGreedy);
    const auto rb = fault::evaluate_resilience(inst, parallel, plan,
                                               fault::RepairPolicy::kGreedy);
    EXPECT_EQ(ra.degraded_latency_ms, rb.degraded_latency_ms);
    EXPECT_EQ(ra.availability, rb.availability);
    EXPECT_EQ(ra.tier_fraction, rb.tier_fraction);
    EXPECT_EQ(ra.lost_placements, rb.lost_placements);
    EXPECT_EQ(ra.repair_placements, rb.repair_placements);
  }
}

TEST(FaultDeterminism, ResilienceEvaluationIsRepeatable) {
  const auto inst = model::make_instance(small_params(), 30);
  const auto strategy = solve_with_threads(inst, 0, 30);
  const auto plan =
      fault::FaultPlan::generate(inst, busy_profile(), 0xfee1);
  const auto a = fault::evaluate_resilience(inst, strategy, plan,
                                            fault::RepairPolicy::kGreedy);
  const auto b = fault::evaluate_resilience(inst, strategy, plan,
                                            fault::RepairPolicy::kGreedy);
  EXPECT_EQ(a.fault_free_latency_ms, b.fault_free_latency_ms);
  EXPECT_EQ(a.degraded_latency_ms, b.degraded_latency_ms);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.tier_fraction, b.tier_fraction);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.lost_placements, b.lost_placements);
  EXPECT_EQ(a.repair_placements, b.repair_placements);
}

}  // namespace
