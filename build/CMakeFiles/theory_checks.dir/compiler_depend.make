# Empty compiler generated dependencies file for theory_checks.
# This may be replaced when dependencies are built.
