file(REMOVE_RECURSE
  "CMakeFiles/idde_util.dir/cli.cpp.o"
  "CMakeFiles/idde_util.dir/cli.cpp.o.d"
  "CMakeFiles/idde_util.dir/csv.cpp.o"
  "CMakeFiles/idde_util.dir/csv.cpp.o.d"
  "CMakeFiles/idde_util.dir/env.cpp.o"
  "CMakeFiles/idde_util.dir/env.cpp.o.d"
  "CMakeFiles/idde_util.dir/json.cpp.o"
  "CMakeFiles/idde_util.dir/json.cpp.o.d"
  "CMakeFiles/idde_util.dir/logging.cpp.o"
  "CMakeFiles/idde_util.dir/logging.cpp.o.d"
  "CMakeFiles/idde_util.dir/random.cpp.o"
  "CMakeFiles/idde_util.dir/random.cpp.o.d"
  "CMakeFiles/idde_util.dir/stats.cpp.o"
  "CMakeFiles/idde_util.dir/stats.cpp.o.d"
  "CMakeFiles/idde_util.dir/table.cpp.o"
  "CMakeFiles/idde_util.dir/table.cpp.o.d"
  "CMakeFiles/idde_util.dir/thread_pool.cpp.o"
  "CMakeFiles/idde_util.dir/thread_pool.cpp.o.d"
  "libidde_util.a"
  "libidde_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idde_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
