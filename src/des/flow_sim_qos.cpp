// The overload-aware DES engine (DESIGN.md §12).
//
// run_with_qos composes four defenses around the fluid replay:
//
//   - arrivals may be generated open-loop (qos::generate_arrivals), so
//     offered load decouples from the request matrix;
//   - every fresh arrival passes a per-serving-server admission gate:
//     bounded service slots, a bounded FIFO waiting room, and the
//     configured shedding policy (deadline-aware drops use an optimistic
//     fault-free Eq. 8 service estimate — anything it condemns is
//     provably unservable in time);
//   - aborted flows retry only while the global token-bucket budget
//     covers them; a denied retry goes cloud-direct instead of feeding
//     the storm;
//   - per-server circuit breakers mask repeatedly-failing sources out of
//     failover resolution (requests fall through to surviving replicas
//     or the cloud while the breaker is open).
//
// Composes with a fault::FaultPlan (chaos mode): epochs, degraded routing
// and cloud brown-outs come from the plan exactly as in run_with_faults.
// The engine is single-threaded and every decision is a pure function of
// (instance, strategy, options, rng state): event ties break on
// (time, kind, record), so results are bit-identical across runs and
// host thread counts.
#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <span>
#include <vector>

#include "des/flow_sim.hpp"
#include "des/fluid.hpp"
#include "fault/injector.hpp"
#include "net/shortest_path.hpp"
#include "obs/obs.hpp"
#include "qos/admission.hpp"
#include "qos/arrivals.hpp"
#include "qos/breaker.hpp"
#include "qos/retry_budget.hpp"
#include "util/assert.hpp"

namespace idde::des {

namespace {

using detail::ActiveFlow;
using detail::assign_max_min_rates;

/// Event kinds, in tie-break order at equal times: releases run before
/// admissions so a slot freed at t is available to an arrival at t.
enum class EventKind : std::uint8_t {
  kLocalDone = 0,   ///< timed local service completed
  kLocalAbort = 1,  ///< serving server died mid local service
  kFresh = 2,
  kRetry = 3,
};

struct Event {
  double time = 0.0;
  EventKind kind = EventKind::kFresh;
  std::size_t record = 0;
};

struct EventLater {
  bool operator()(const Event& x, const Event& y) const {
    if (x.time != y.time) return x.time > y.time;
    if (x.kind != y.kind) return x.kind > y.kind;
    return x.record > y.record;
  }
};

}  // namespace

FlowSimResult FlowLevelSimulator::run_with_qos(const core::Strategy& strategy,
                                               util::Rng& rng) const {
  const model::ProblemInstance& instance = *instance_;
  const qos::QosConfig& config = *options_.qos;
  IDDE_EXPECTS(strategy.allocation.size() == instance.user_count());

  const fault::FaultPlan* plan = options_.fault_plan;
  const bool faults = plan != nullptr && !plan->inert();
  std::optional<fault::FaultInjector> injector;
  if (faults) injector.emplace(instance, *plan);
  const bool corruption = faults && plan->replica_corruption_prob() > 0.0;

  const std::size_t servers = instance.server_count();
  const qos::AdmissionConfig& admission = config.admission;
  const bool slots_enabled = admission.service_slots > 0;
  const bool deadline_aware =
      admission.policy == qos::SheddingPolicy::kDeadlineAware &&
      admission.deadline_s > 0.0;

  FlowSimResult result;

  // --- Offered arrivals -------------------------------------------------
  // Replay keeps the pre-QoS record order and rng draws; the open-loop
  // processes delegate to qos::generate_arrivals (generation order).
  if (config.arrivals.inert()) {
    for (std::size_t j = 0; j < instance.user_count(); ++j) {
      for (const std::size_t k : instance.requests().items_of(j)) {
        FlowRecord record;
        record.user = j;
        record.item = k;
        record.arrival_s = options_.arrival_window_s > 0.0
                               ? rng.uniform(0.0, options_.arrival_window_s)
                               : 0.0;
        result.flows.push_back(record);
      }
    }
  } else {
    for (const qos::Arrival& arrival :
         qos::generate_arrivals(instance, config.arrivals, rng)) {
      FlowRecord record;
      record.user = arrival.user;
      record.item = arrival.item;
      record.arrival_s = arrival.time_s;
      result.flows.push_back(record);
    }
  }
  const std::size_t records = result.flows.size();

  // --- Per-record derived state ----------------------------------------
  const auto serving_of = [&](std::size_t r) {
    const core::ChannelSlot slot = strategy.allocation[result.flows[r].user];
    return slot.allocated() ? slot.server : core::ChannelSlot::kNone;
  };
  // Optimistic service estimate: the fault-free Eq. 8 seconds (plus the
  // local service time when admission makes local hits non-free). A lower
  // bound on any real completion, so deadline-aware shedding only drops
  // requests that provably cannot make it.
  std::vector<double> estimate_s(records, 0.0);
  for (std::size_t r = 0; r < records; ++r) {
    const FlowRecord& record = result.flows[r];
    const double size = instance.data(record.item).size_mb;
    double best = instance.latency().cloud_transfer_seconds(size);
    const std::size_t serving = serving_of(r);
    if (serving != core::ChannelSlot::kNone) {
      for (const std::size_t host : strategy.delivery.hosts(record.item)) {
        if (!strategy.collaborative_delivery && host != serving) continue;
        const double seconds =
            instance.latency().edge_transfer_seconds(host, serving, size);
        best = std::min(best, seconds);
      }
    }
    if (best <= 0.0 && slots_enabled) {
      best = size * admission.local_service_s_per_mb;
    }
    estimate_s[r] = best;
  }
  std::vector<std::size_t> attempt_source(records, core::ChannelSlot::kNone);
  std::vector<std::uint8_t> holds_slot(records, 0);
  // Start time and uncontended expected seconds of the current routed
  // attempt — the breaker's sustained-latency (slow_ratio) trip compares
  // observed against expected at completion.
  std::vector<double> attempt_start(records, 0.0);
  std::vector<double> attempt_expected(records, 0.0);

  // --- QoS machinery ----------------------------------------------------
  std::vector<std::size_t> in_service(servers, 0);
  std::vector<qos::AdmissionQueue> queues(
      servers, qos::AdmissionQueue(admission));
  std::vector<qos::CircuitBreaker> breakers(
      servers, qos::CircuitBreaker(config.breaker));
  qos::RetryBudget budget(config.retry_budget);

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  for (std::size_t r = 0; r < records; ++r) {
    events.push(Event{result.flows[r].arrival_s, EventKind::kFresh, r});
  }

  std::vector<double> capacities;
  capacities.reserve(links_.size());
  for (const Link& link : links_) capacities.push_back(link.capacity_mbps);

  std::vector<ActiveFlow> active;
  std::vector<std::size_t> eligible_hosts;
  std::vector<std::uint8_t> up_buf;

  const auto cloud_done = [&](double start, double seconds) {
    return faults ? plan->cloud_completion(start, seconds) : start + seconds;
  };

  // Checksum-on-read: did the attempt's source hand over corrupt bytes?
  const auto source_corrupt = [&](std::size_t r) {
    const std::size_t source = attempt_source[r];
    return corruption && source != core::kCloudSource &&
           plan->replica_corrupted(source, result.flows[r].item);
  };

  // Deadline check used at arrival, at the queue head, and on retries.
  const auto unmeetable = [&](std::size_t r, double now) {
    return deadline_aware && now + estimate_s[r] >
                                 result.flows[r].arrival_s +
                                     admission.deadline_s;
  };

  const auto force_cloud = [&](std::size_t r, double now) {
    FlowRecord& record = result.flows[r];
    record.forced_cloud = true;
    record.from_cloud = true;
    record.local_hit = false;
    record.tier = core::FallbackTier::kCloud;
    const double size = instance.data(record.item).size_mb;
    record.completion_s =
        cloud_done(now, instance.latency().cloud_transfer_seconds(size));
  };

  // Starts service for record `r` at `now`. Resolves the source through
  // the failover resolver against the current epoch, with breaker-open
  // servers masked out of the liveness span. Takes a service slot (and
  // marks the record as holding it) only for work that occupies the
  // serving server over time: routed transfers and timed local service.
  // Cloud legs are the relief valve — they never hold edge resources.
  const auto start_service = [&](std::size_t r, double now) {
    FlowRecord& record = result.flows[r];
    record.from_cloud = false;
    record.local_hit = false;
    const std::size_t serving = serving_of(r);
    const double size = instance.data(record.item).size_mb;

    const fault::AvailabilitySnapshot* snap =
        faults ? &injector->snapshot_at(now) : nullptr;
    std::span<const std::uint8_t> server_up;
    const net::CostMatrix* costs = nullptr;
    const net::Graph* graph = &instance.graph();
    if (snap != nullptr) {
      server_up = snap->server_up;
      costs = &snap->costs;
      graph = &snap->graph;
    }
    if (!config.breaker.inert()) {
      if (server_up.empty()) {
        up_buf.assign(servers, 1);
      } else {
        up_buf.assign(server_up.begin(), server_up.end());
      }
      for (std::size_t i = 0; i < servers; ++i) {
        if (!breakers[i].allows(now)) up_buf[i] = 0;
      }
      server_up = up_buf;
    }

    // Unlike run_with_faults, corrupt replicas are NOT filtered out here:
    // silent corruption is invisible to the resolver and only surfaces as
    // a checksum failure when the transfer completes (see the completion
    // paths) — the failure class circuit breakers exist for.
    eligible_hosts.clear();
    for (const std::size_t host : strategy.delivery.hosts(record.item)) {
      if (!strategy.collaborative_delivery && host != serving) continue;
      eligible_hosts.push_back(host);
    }
    const core::FailoverDecision decision = core::resolve_with_failover(
        instance, eligible_hosts, serving, size, server_up, costs);
    record.tier = decision.tier;
    attempt_source[r] = decision.source;
    attempt_start[r] = now;
    attempt_expected[r] = decision.seconds;

    if (decision.source == core::kCloudSource) {
      record.from_cloud = true;
      record.completion_s = cloud_done(now, decision.seconds);
      return;
    }
    breakers[decision.source].on_attempt_started(now);
    if (decision.source == serving) {
      record.local_hit = true;
      const double service_s =
          slots_enabled ? size * admission.local_service_s_per_mb : 0.0;
      if (service_s > 0.0) {
        const double done = now + service_s;
        // A crash of the serving server aborts the service at the first
        // epoch boundary where it is down (routed flows get the same
        // treatment from the fluid loop's epoch scan).
        double abort_at = -1.0;
        if (faults) {
          for (double t = plan->next_edge_change_after(now); t < done;
               t = plan->next_edge_change_after(t)) {
            if (!plan->server_up(serving, t)) {
              abort_at = t;
              break;
            }
          }
        }
        ++in_service[serving];
        holds_slot[r] = 1;
        if (abort_at >= 0.0) {
          events.push(Event{abort_at, EventKind::kLocalAbort, r});
        } else {
          record.completion_s = done;
          events.push(Event{done, EventKind::kLocalDone, r});
        }
        return;
      }
      if (source_corrupt(r)) {
        // Instant local read of a corrupt replica: fail it through the
        // same-time event queue (kLocalAbort sorts before fresh work).
        events.push(Event{now, EventKind::kLocalAbort, r});
        return;
      }
      record.completion_s = now;
      breakers[serving].record_success(now);
      return;
    }

    const net::Route route =
        net::shortest_route(*graph, decision.source, serving);
    IDDE_ASSERT(!route.nodes.empty(), "resolver picked an unreachable replica");
    record.hops = route.hops();
    ActiveFlow flow;
    flow.record_index = r;
    flow.remaining_mb = size;
    for (std::size_t s = 0; s + 1 < route.nodes.size(); ++s) {
      const std::size_t l = link_between(route.nodes[s], route.nodes[s + 1]);
      IDDE_ASSERT(l != kNoLink, "route uses a missing link");
      flow.links.push_back(l);
    }
    if (slots_enabled && serving != core::ChannelSlot::kNone) {
      ++in_service[serving];
      holds_slot[r] = 1;
    }
    active.push_back(std::move(flow));
  };

  // Admits waiting requests into freed slots, purging unmeetable heads.
  const auto drain = [&](std::size_t server, double now) {
    if (!slots_enabled) return;
    qos::AdmissionQueue& queue = queues[server];
    while (in_service[server] < admission.service_slots && !queue.empty()) {
      const qos::QueueEntry entry = queue.pop_front();
      FlowRecord& record = result.flows[entry.record];
      if (unmeetable(entry.record, now)) {
        if (entry.retry) {
          force_cloud(entry.record, now);
        } else {
          record.outcome = FlowOutcome::kShed;
          record.completion_s = now;
        }
        continue;
      }
      record.queue_wait_s += now - entry.enqueue_s;
      start_service(entry.record, now);
    }
  };

  const auto release_slot = [&](std::size_t r, double now) {
    if (holds_slot[r] == 0) return;
    holds_slot[r] = 0;
    const std::size_t serving = serving_of(r);
    IDDE_ASSERT(in_service[serving] > 0, "slot release underflow");
    --in_service[serving];
    drain(serving, now);
  };

  const auto handle_fresh = [&](std::size_t r, double now) {
    budget.on_fresh_arrival();
    FlowRecord& record = result.flows[r];
    if (unmeetable(r, now)) {
      record.outcome = FlowOutcome::kShed;
      record.completion_s = now;
      return;
    }
    const std::size_t serving = serving_of(r);
    if (!slots_enabled || serving == core::ChannelSlot::kNone) {
      start_service(r, now);
      return;
    }
    if (in_service[serving] < admission.service_slots) {
      start_service(r, now);
      return;
    }
    if (queues[serving].full()) {
      record.outcome = FlowOutcome::kRejected;
      record.completion_s = now;
      return;
    }
    queues[serving].push(qos::QueueEntry{r, now, /*retry=*/false});
  };

  const auto handle_retry = [&](std::size_t r, double now) {
    if (unmeetable(r, now)) {
      // Already admitted — the deadline miss becomes a cloud fetch, not a
      // shed.
      force_cloud(r, now);
      return;
    }
    const std::size_t serving = serving_of(r);
    if (!slots_enabled || serving == core::ChannelSlot::kNone ||
        in_service[serving] < admission.service_slots) {
      start_service(r, now);
      return;
    }
    // Retries bypass the capacity check: their population is bounded by
    // the retry budget / max_retries, and dropping an admitted request
    // would leak the accounting invariant.
    queues[serving].push(qos::QueueEntry{r, now, /*retry=*/true});
  };

  // One aborted delivery attempt (epoch killed a routed flow or a local
  // service): count the retry, feed the breaker, then either retry after
  // backoff or — past the caps or with an empty budget — go cloud-direct.
  const auto abort_attempt = [&](std::size_t r, double now) {
    IDDE_OBS_COUNT("qos.attempt_aborts_total", 1);
    FlowRecord& record = result.flows[r];
    ++record.retries;
    breakers[attempt_source[r]].record_failure(now);
    if (record.retries > options_.max_retries ||
        now - record.arrival_s > options_.timeout_s) {
      force_cloud(r, now);
    } else if (!budget.try_spend_retry()) {
      // Budget empty: the retry storm stops here, cloud-direct.
      force_cloud(r, now);
    } else {
      const double backoff = std::min(
          options_.retry_backoff_s *
              std::ldexp(1.0, static_cast<int>(record.retries) - 1),
          options_.retry_backoff_max_s);
      events.push(Event{now + backoff, EventKind::kRetry, r});
    }
    release_slot(r, now);
  };

  const auto dispatch = [&](const Event& event, double now) {
    switch (event.kind) {
      case EventKind::kFresh:
        handle_fresh(event.record, now);
        break;
      case EventKind::kRetry:
        handle_retry(event.record, now);
        break;
      case EventKind::kLocalDone:
        if (source_corrupt(event.record)) {
          // The service time was spent shipping garbage; checksum fails
          // at completion and the attempt aborts.
          abort_attempt(event.record, now);
          break;
        }
        // completion_s was fixed when the service started.
        breakers[serving_of(event.record)].record_success(now);
        release_slot(event.record, now);
        break;
      case EventKind::kLocalAbort:
        abort_attempt(event.record, now);
        break;
    }
  };

  // --- Event loop (mirrors run_with_faults, plus the admission gate) ---
  double now = 0.0;
  while (!active.empty() || !events.empty()) {
    if (active.empty()) now = std::max(now, events.top().time);
    while (!events.empty() && events.top().time <= now) {
      const Event event = events.top();
      events.pop();
      dispatch(event, now);
    }
    if (active.empty()) continue;  // next event re-anchors `now`

    assign_max_min_rates(active, capacities);
    ++result.rate_recomputations;

    double dt = std::numeric_limits<double>::infinity();
    for (const ActiveFlow& flow : active) {
      IDDE_ASSERT(flow.rate_mbps > 0.0, "starved flow");
      dt = std::min(dt, flow.remaining_mb / flow.rate_mbps);
    }
    if (!events.empty()) dt = std::min(dt, events.top().time - now);
    bool epoch_event = false;
    if (faults) {
      const double next_epoch = plan->next_edge_change_after(now);
      epoch_event = next_epoch - now <= dt;
      if (epoch_event) dt = next_epoch - now;
    }

    for (ActiveFlow& flow : active) flow.remaining_mb -= flow.rate_mbps * dt;
    now += dt;

    // Retire completed flows. release_slot may start queued work, which
    // appends to `active` with full remaining_mb — the index loop visits
    // those and correctly keeps them.
    for (std::size_t f = 0; f < active.size();) {
      if (active[f].remaining_mb > 1e-9) {
        ++f;
        continue;
      }
      const std::size_t r = active[f].record_index;
      active[f] = active.back();
      active.pop_back();
      if (source_corrupt(r)) {
        abort_attempt(r, now);
        continue;
      }
      result.flows[r].completion_s = now;
      // With slow_ratio configured, a completion inflated past
      // slow_ratio × expected counts as a failure — gray servers trip
      // the breaker without ever aborting. slow_ratio == 0 reduces to
      // record_success exactly.
      breakers[attempt_source[r]].record_completion(
          now, now - attempt_start[r], attempt_expected[r]);
      release_slot(r, now);
    }

    if (epoch_event) {
      for (std::size_t f = 0; f < active.size();) {
        bool dead = false;
        for (const std::size_t l : active[f].links) {
          if (!plan->server_up(links_[l].a, now) ||
              !plan->server_up(links_[l].b, now) ||
              !plan->link_up(links_[l].a, links_[l].b, now)) {
            dead = true;
            break;
          }
        }
        if (!dead) {
          ++f;
          continue;
        }
        IDDE_OBS_COUNT("des.epoch_aborts_total", 1);
        const std::size_t r = active[f].record_index;
        active[f] = active.back();
        active.pop_back();
        abort_attempt(r, now);
      }
    }
  }

  for (std::size_t i = 0; i < servers; ++i) {
    IDDE_ASSERT(queues[i].empty(), "stuck admission queue at shutdown");
    IDDE_ASSERT(in_service[i] == 0, "leaked service slot at shutdown");
  }

  result.qos.retries_denied = budget.denied();
  for (const qos::CircuitBreaker& breaker : breakers) {
    result.qos.breaker_opens += breaker.times_opened();
  }
  const double window = config.arrivals.inert() ? options_.arrival_window_s
                                                : config.arrivals.window_s;
  finalize(result, admission.deadline_s, window);
  return result;
}

}  // namespace idde::des
