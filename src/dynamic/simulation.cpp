#include "dynamic/simulation.hpp"

#include <algorithm>

#include "core/delivery.hpp"
#include "core/greedy_delivery.hpp"
#include "core/idde_g.hpp"
#include "core/metrics.hpp"
#include "dynamic/world.hpp"
#include "util/assert.hpp"

namespace idde::dynamic {

namespace {

/// Copies a delivery profile's placements onto a profile bound to another
/// (shape-identical) instance snapshot.
core::DeliveryProfile rebind(const model::ProblemInstance& instance,
                             const core::DeliveryProfile& source) {
  core::DeliveryProfile out(instance);
  for (std::size_t k = 0; k < instance.data_count(); ++k) {
    for (const std::size_t i : source.hosts(k)) {
      out.place(i, k);
    }
  }
  return out;
}

/// R_avg over the online users only (offline users neither transmit nor
/// count toward the average).
double masked_rate(const model::ProblemInstance& instance,
                   const core::AllocationProfile& allocation,
                   const std::vector<bool>& online) {
  const auto rates = core::user_rates(instance, allocation);
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t j = 0; j < rates.size(); ++j) {
    if (!online[j]) continue;
    sum += rates[j];
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

/// L_avg over the online users' requests only.
double masked_latency_ms(const model::ProblemInstance& instance,
                         const core::AllocationProfile& allocation,
                         const std::vector<bool>& online,
                         const core::DeliveryProfile& placements) {
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    if (!online[j]) continue;
    const bool allocated = allocation[j].allocated();
    for (const std::size_t k : instance.requests().items_of(j)) {
      const double size = instance.data(k).size_mb;
      double best = instance.latency().cloud_transfer_seconds(size);
      if (allocated) {
        for (const std::size_t host : placements.hosts(k)) {
          best = std::min(best, instance.latency().edge_transfer_seconds(
                                    host, allocation[j].server, size));
        }
      }
      total += best;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count) * 1e3;
}

}  // namespace

DynamicSimulation::DynamicSimulation(DynamicParams params, std::uint64_t seed)
    : params_(std::move(params)), seed_(seed) {
  IDDE_EXPECTS(params_.step_seconds > 0.0);
  IDDE_EXPECTS(params_.steps > 0);
}

DynamicSummary DynamicSimulation::run() {
  const model::ProblemInstance base =
      model::make_instance(params_.base, seed_);
  const radio::PathLossModel pathloss(params_.base.pathloss_eta,
                                      params_.base.pathloss_exponent);
  const geo::BoundingBox bounds =
      geo::BoundingBox::square(params_.base.eua.area_side_m);

  util::Rng rng(seed_ ^ 0xd15ab1edULL);
  util::Rng walk_rng = rng.fork(1);
  util::Rng solve_rng = rng.fork(2);

  RandomWaypointModel mobility(user_positions(base), bounds,
                               params_.mobility, walk_rng);
  util::Rng churn_rng = rng.fork(3);
  ChurnProcess churn(base.user_count(),
                     params_.churn_enabled ? params_.churn : ChurnParams{},
                     churn_rng);

  // t = 0: initial solve on the base instance.
  core::IddeG solver;
  core::Strategy standing = solver.solve(base, solve_rng);
  core::AllocationProfile allocation = standing.allocation;
  // Placement data is carried as host lists; rebind per snapshot.
  core::DeliveryProfile placements = rebind(base, standing.delivery);

  DynamicSummary summary;
  summary.total_resolves = 1;

  // Change-tracked rebuilds by default; the full per-step rebuild stays
  // available as the oracle (see DynamicParams::rebuild_oracle).
  std::optional<WorldTracker> tracker;
  if (!params_.rebuild_oracle) tracker.emplace(base, pathloss);

  for (std::size_t step = 1; step <= params_.steps; ++step) {
    mobility.step(params_.step_seconds, walk_rng);
    std::optional<model::ProblemInstance> rebuilt;
    if (tracker.has_value()) {
      tracker->update(mobility.positions());
    } else {
      rebuilt.emplace(
          with_user_positions(base, mobility.positions(), pathloss));
    }
    const model::ProblemInstance& snapshot =
        tracker.has_value() ? tracker->instance() : *rebuilt;

    StepRecord record;
    record.time_s = static_cast<double>(step) * params_.step_seconds;

    if (params_.churn_enabled) {
      record.churn_events = churn.step(params_.step_seconds, churn_rng);
      // Departed users release their channel immediately.
      for (std::size_t j = 0; j < allocation.size(); ++j) {
        if (!churn.online(j) && allocation[j].allocated()) {
          allocation[j] = core::kUnallocated;
        }
      }
    }
    record.online_users = params_.churn_enabled ? churn.online_count()
                                                : base.user_count();

    // Drop users who walked out of their serving server's coverage.
    for (std::size_t j = 0; j < allocation.size(); ++j) {
      if (!allocation[j].allocated()) continue;
      const auto& covering = snapshot.covering_servers(j);
      if (!std::binary_search(covering.begin(), covering.end(),
                              allocation[j].server)) {
        allocation[j] = core::kUnallocated;
        ++record.dropped_users;
      }
    }

    const bool resolve_now =
        params_.resolve_period > 0 && step % params_.resolve_period == 0;
    if (resolve_now) {
      record.resolved = true;
      ++summary.total_resolves;

      core::GameOptions game_options;
      game_options.max_rounds =
          std::max<std::size_t>(1000, snapshot.user_count() * 200);
      // Offline users must not be (re)allocated: give them no candidates.
      std::vector<std::vector<std::size_t>> candidates;
      if (params_.churn_enabled) {
        candidates.resize(snapshot.user_count());
        for (std::size_t j = 0; j < snapshot.user_count(); ++j) {
          if (churn.online(j)) candidates[j] = snapshot.covering_servers(j);
        }
        game_options.candidate_servers = &candidates;
      }
      core::IddeUGame game(snapshot, game_options);
      const core::AllocationProfile before = allocation;
      core::GameResult result =
          params_.warm_start
              ? game.run_from(allocation)
              : game.run();
      record.game_moves = result.moves;
      for (std::size_t j = 0; j < allocation.size(); ++j) {
        const bool was = before[j].allocated();
        const bool now = result.allocation[j].allocated();
        if (was != now ||
            (was && now && before[j].server != result.allocation[j].server)) {
          ++record.handovers;
        }
      }
      summary.total_handovers += record.handovers;
      allocation = std::move(result.allocation);

      // Re-plan delivery and pay the migration.
      core::GreedyDeliveryPlanner planner(snapshot);
      core::DeliveryProfile next = planner.plan(allocation).delivery;
      const core::DeliveryProfile previous = rebind(snapshot, placements);
      const MigrationPlan migration =
          plan_migration(snapshot, previous, next);
      record.migration_mb = migration.total_mb;
      summary.total_migration_mb += migration.total_mb;
      placements = std::move(next);
    }

    const core::DeliveryProfile bound = rebind(snapshot, placements);
    if (params_.churn_enabled) {
      record.rate_mbps = masked_rate(snapshot, allocation, churn.mask());
      record.latency_ms =
          masked_latency_ms(snapshot, allocation, churn.mask(), bound);
    } else {
      record.rate_mbps = core::average_data_rate_mbps(snapshot, allocation);
      record.latency_ms =
          core::average_latency_ms(snapshot, allocation, bound);
    }
    summary.steps.push_back(record);
  }

  for (const StepRecord& record : summary.steps) {
    summary.mean_rate_mbps += record.rate_mbps;
    summary.mean_latency_ms += record.latency_ms;
  }
  const auto n = static_cast<double>(summary.steps.size());
  summary.mean_rate_mbps /= n;
  summary.mean_latency_ms /= n;
  summary.total_distance_m = mobility.total_distance_m();
  return summary;
}

}  // namespace idde::dynamic
