// Per-user fairness metrics. The paper optimises averages; a vendor also
// cares whether the average hides starved users. Jain's index over the
// per-user rates is the standard summary (1 = perfectly even, 1/M = one
// user gets everything); bench tables report it alongside R_avg.
#pragma once

#include <span>

#include "core/strategy.hpp"
#include "model/instance.hpp"

namespace idde::core {

/// Jain's fairness index (sum x)^2 / (n * sum x^2); 0 for empty/all-zero.
[[nodiscard]] double jain_index(std::span<const double> values);

struct FairnessReport {
  double jain = 0.0;         ///< over per-user rates
  double p10_rate_mbps = 0.0;  ///< 10th-percentile user rate
  double min_rate_mbps = 0.0;
  std::size_t starved_users = 0;  ///< R_j == 0 (unallocated or drowned)
};

[[nodiscard]] FairnessReport fairness_report(
    const model::ProblemInstance& instance,
    const AllocationProfile& allocation);

}  // namespace idde::core
