// Equivalence and property tests for the incremental, parallel
// best-response engine. The dirty-set cache and the thread fan-out are
// pure scheduling layers: for every update rule and thread count the game
// must replay the seed full-scan engine's move sequence exactly, and the
// cached benefits it carries must match a from-scratch recomputation.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/game.hpp"
#include "model/instance_builder.hpp"
#include "radio/interference.hpp"

namespace {

using namespace idde;
using core::AllocationProfile;
using core::GameOptions;
using core::GameResult;
using core::IddeUGame;
using core::UpdateRule;
using model::InstanceParams;
using model::ProblemInstance;

constexpr UpdateRule kAllRules[] = {UpdateRule::kBestImprovement,
                                    UpdateRule::kFirstImprovement,
                                    UpdateRule::kAsyncSweep};

InstanceParams shape(std::size_t n, std::size_t m, std::size_t k = 3) {
  InstanceParams p;
  p.server_count = n;
  p.user_count = m;
  p.data_count = k;
  return p;
}

GameResult run_engine(const ProblemInstance& inst, UpdateRule rule,
                      bool incremental, std::size_t threads) {
  GameOptions options;
  options.rule = rule;
  options.incremental = incremental;
  options.threads = threads;
  return IddeUGame(inst, options).run();
}

void expect_same_dynamics(const GameResult& expected, const GameResult& actual,
                          std::uint64_t seed, UpdateRule rule) {
  const auto tag = [&] {
    return ::testing::Message() << "seed " << seed << " rule "
                                << static_cast<int>(rule);
  };
  EXPECT_EQ(expected.moves, actual.moves) << tag();
  EXPECT_EQ(expected.rounds, actual.rounds) << tag();
  EXPECT_EQ(expected.converged, actual.converged) << tag();
  EXPECT_EQ(expected.frozen_users, actual.frozen_users) << tag();
  ASSERT_EQ(expected.allocation.size(), actual.allocation.size());
  for (std::size_t j = 0; j < expected.allocation.size(); ++j) {
    EXPECT_EQ(expected.allocation[j], actual.allocation[j])
        << tag() << " user " << j;
  }
}

// 20 seeded instances x 3 rules: the incremental engine must replay the
// full-scan engine's dynamics exactly (same move count, same rounds, same
// final allocation), while doing strictly less SINR work.
TEST(IncrementalEngine, ReplaysFullScanDynamicsExactly) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ProblemInstance inst = model::make_instance(shape(8, 40), seed);
    for (const UpdateRule rule : kAllRules) {
      const GameResult full = run_engine(inst, rule, false, 1);
      const GameResult inc = run_engine(inst, rule, true, 1);
      expect_same_dynamics(full, inc, seed, rule);
      EXPECT_LE(inc.benefit_evaluations, full.benefit_evaluations);
    }
  }
}

// The thread fan-out must not change the dynamics either (winner selection
// stays a deterministic serial scan over the refreshed cache).
TEST(IncrementalEngine, ParallelReplaysFullScanDynamics) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const ProblemInstance inst = model::make_instance(shape(10, 60), seed);
    for (const UpdateRule rule : kAllRules) {
      const GameResult full = run_engine(inst, rule, false, 1);
      for (const std::size_t threads : {std::size_t{0}, std::size_t{3}}) {
        const GameResult inc = run_engine(inst, rule, true, threads);
        expect_same_dynamics(full, inc, seed, rule);
      }
    }
  }
}

// Kernel swap invariance: with GameOptions::batched toggled off the engine
// prices slots through per-slot InterferenceField calls (the scalar
// oracle); with it on, through the BatchEvaluator SoA kernel. The kernels
// are bit-identical by contract, so every rule at every thread count must
// produce the same move sequence, round count, and final allocation —
// and the same number of benefit evaluations, since dirty-set scheduling
// is untouched by the kernel choice.
TEST(IncrementalEngine, BatchedKernelReplaysScalarKernelDynamics) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const ProblemInstance inst = model::make_instance(shape(10, 60), seed);
    for (const UpdateRule rule : kAllRules) {
      for (const std::size_t threads :
           {std::size_t{1}, std::size_t{0}, std::size_t{3}}) {
        GameOptions options;
        options.rule = rule;
        options.incremental = true;
        options.threads = threads;
        options.batched = false;
        const GameResult scalar = IddeUGame(inst, options).run();
        options.batched = true;
        const GameResult batched = IddeUGame(inst, options).run();
        expect_same_dynamics(scalar, batched, seed, rule);
        // At matched thread counts the schedule is identical too, so the
        // kernels must price the exact same set of slots. (Across thread
        // counts kAsyncSweep legitimately evaluates more — the fan-out
        // refreshes speculatively — which is why scalar and batched are
        // paired per thread count here.)
        EXPECT_EQ(scalar.benefit_evaluations, batched.benefit_evaluations)
            << "seed " << seed << " rule " << static_cast<int>(rule)
            << " threads " << threads;
      }
    }
  }
}

// The point of the dirty set: a move perturbs only two channel slots, so
// on a paper-shaped instance most cached responses survive each round and
// the evaluation count collapses (the bench's acceptance bar is 3x; the
// margin here is far larger).
TEST(IncrementalEngine, SlashesBenefitEvaluations) {
  const ProblemInstance inst = model::make_instance(shape(20, 150, 5), 7);
  const GameResult full =
      run_engine(inst, UpdateRule::kBestImprovement, false, 1);
  const GameResult inc =
      run_engine(inst, UpdateRule::kBestImprovement, true, 1);
  EXPECT_GE(full.benefit_evaluations, 3 * inc.benefit_evaluations);
}

// Property: a converged incremental run with no frozen users is a Nash
// equilibrium (Definition 3) — the cache never hides an improving move.
TEST(IncrementalEngine, ConvergedProfileIsNashEquilibrium) {
  std::size_t checked = 0;
  for (std::uint64_t seed = 30; seed < 42; ++seed) {
    const ProblemInstance inst = model::make_instance(shape(7, 30), seed);
    for (const UpdateRule rule : kAllRules) {
      const GameResult result = run_engine(inst, rule, true, 1);
      if (result.converged && result.frozen_users == 0) {
        EXPECT_TRUE(core::is_nash_equilibrium(inst, result.allocation))
            << "seed " << seed << " rule " << static_cast<int>(rule);
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 20u);
}

// Randomized equivalence: the benefits the engine carried in its cache at
// convergence must match a from-scratch recomputation (benefit_reference,
// derived like sinr_reference) to 1e-12 — the incremental field and the
// dirty-set bookkeeping introduce no drift.
TEST(IncrementalEngine, CachedBenefitsMatchReferenceRecomputation) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    const ProblemInstance inst = model::make_instance(shape(9, 45), seed);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{0}}) {
      const GameResult result =
          run_engine(inst, UpdateRule::kBestImprovement, true, threads);
      ASSERT_EQ(result.final_benefits.size(), inst.user_count());
      for (std::size_t j = 0; j < inst.user_count(); ++j) {
        if (!result.allocation[j].allocated()) {
          EXPECT_EQ(result.final_benefits[j], 0.0);
          continue;
        }
        const double reference = radio::benefit_reference(
            inst.radio_env(), result.allocation, j, result.allocation[j]);
        EXPECT_NEAR(result.final_benefits[j], reference, 1e-12)
            << "seed " << seed << " user " << j;
      }
    }
  }
}

// run_from with a warm profile: the incremental engine accepts an
// arbitrary starting allocation and still matches the full-scan replay.
TEST(IncrementalEngine, WarmStartReplaysFullScan) {
  const ProblemInstance inst = model::make_instance(shape(8, 40), 55);
  GameOptions options;
  const GameResult warm = IddeUGame(inst, options).run();
  // Perturb: drop every third user back to unallocated.
  AllocationProfile start = warm.allocation;
  for (std::size_t j = 0; j < start.size(); j += 3) start[j] = core::kUnallocated;
  for (const UpdateRule rule : kAllRules) {
    GameOptions full_options;
    full_options.rule = rule;
    full_options.incremental = false;
    GameOptions inc_options;
    inc_options.rule = rule;
    inc_options.incremental = true;
    const GameResult full = IddeUGame(inst, full_options).run_from(start);
    const GameResult inc = IddeUGame(inst, inc_options).run_from(start);
    expect_same_dynamics(full, inc, 55, rule);
  }
}

// DUP-G-style candidate restriction composes with the cache.
TEST(IncrementalEngine, CandidateRestrictionReplaysFullScan) {
  const ProblemInstance inst = model::make_instance(shape(8, 40), 77);
  std::vector<std::vector<std::size_t>> candidates(inst.user_count());
  for (std::size_t j = 0; j < inst.user_count(); ++j) {
    const auto& covering = inst.covering_servers(j);
    // Keep every other covering server; some users end up with none.
    for (std::size_t c = 0; c < covering.size(); c += 2) {
      candidates[j].push_back(covering[c]);
    }
  }
  for (const UpdateRule rule : kAllRules) {
    GameOptions full_options;
    full_options.rule = rule;
    full_options.incremental = false;
    full_options.candidate_servers = &candidates;
    GameOptions inc_options = full_options;
    inc_options.incremental = true;
    const GameResult full = IddeUGame(inst, full_options).run();
    const GameResult inc = IddeUGame(inst, inc_options).run();
    expect_same_dynamics(full, inc, 77, rule);
  }
}

// The move budget freezes cycling users identically in both engines (the
// dirty set must not resurrect a frozen user's stale cache entry).
TEST(IncrementalEngine, MoveBudgetFreezesIdentically) {
  for (std::uint64_t seed = 200; seed < 206; ++seed) {
    const ProblemInstance inst = model::make_instance(shape(10, 60), seed);
    for (const UpdateRule rule : kAllRules) {
      GameOptions full_options;
      full_options.rule = rule;
      full_options.incremental = false;
      full_options.max_moves_per_user = 2;
      GameOptions inc_options = full_options;
      inc_options.incremental = true;
      const GameResult full = IddeUGame(inst, full_options).run();
      const GameResult inc = IddeUGame(inst, inc_options).run();
      expect_same_dynamics(full, inc, seed, rule);
    }
  }
}

}  // namespace
