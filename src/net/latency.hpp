// Delivery-latency model implementing Eq. (8): the latency of serving item
// d_k at server v_i from replica host v_o is size_k * cost(o, i); the cloud
// (which always holds every item, Eq. 7) delivers at size_k / cloud_speed.
// Eq. (8)'s latency constraint — edge delivery must not beat-lose to the
// cloud — is enforced by taking the min over {replicas} ∪ {cloud}.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "net/shortest_path.hpp"

namespace idde::net {

class DeliveryLatencyModel {
 public:
  /// `cloud_speed_mbps` is the vendor's cloud->edge transfer speed.
  DeliveryLatencyModel(CostMatrix costs, double cloud_speed_mbps);

  [[nodiscard]] std::size_t server_count() const noexcept {
    return costs_.size();
  }

  /// Seconds to move `size_mb` from server `from` to server `to` in-system.
  [[nodiscard]] double edge_transfer_seconds(std::size_t from, std::size_t to,
                                             double size_mb) const {
    return costs_.cost(from, to) * size_mb;
  }

  /// Seconds to fetch `size_mb` from the remote cloud.
  [[nodiscard]] double cloud_transfer_seconds(double size_mb) const {
    return size_mb / cloud_speed_mbps_;
  }

  /// Eq. (8): cheapest delivery of an item of `size_mb` to server `to`,
  /// given the replica hosts in `replica_hosts`; capped by the cloud.
  [[nodiscard]] double best_delivery_seconds(
      std::span<const std::size_t> replica_hosts, std::size_t to,
      double size_mb) const;

  [[nodiscard]] const CostMatrix& costs() const noexcept { return costs_; }
  [[nodiscard]] double cloud_speed_mbps() const noexcept {
    return cloud_speed_mbps_;
  }

 private:
  CostMatrix costs_;
  double cloud_speed_mbps_;
};

}  // namespace idde::net
