
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/graph.cpp" "src/net/CMakeFiles/idde_net.dir/graph.cpp.o" "gcc" "src/net/CMakeFiles/idde_net.dir/graph.cpp.o.d"
  "/root/repo/src/net/graph_gen.cpp" "src/net/CMakeFiles/idde_net.dir/graph_gen.cpp.o" "gcc" "src/net/CMakeFiles/idde_net.dir/graph_gen.cpp.o.d"
  "/root/repo/src/net/latency.cpp" "src/net/CMakeFiles/idde_net.dir/latency.cpp.o" "gcc" "src/net/CMakeFiles/idde_net.dir/latency.cpp.o.d"
  "/root/repo/src/net/shortest_path.cpp" "src/net/CMakeFiles/idde_net.dir/shortest_path.cpp.o" "gcc" "src/net/CMakeFiles/idde_net.dir/shortest_path.cpp.o.d"
  "/root/repo/src/net/wan_profile.cpp" "src/net/CMakeFiles/idde_net.dir/wan_profile.cpp.o" "gcc" "src/net/CMakeFiles/idde_net.dir/wan_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/idde_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
