file(REMOVE_RECURSE
  "libidde_baselines.a"
)
