#include "geo/spatial_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace idde::geo {

SpatialGrid::SpatialGrid(const std::vector<Point>& points, BoundingBox bounds,
                         double cell_size_m)
    : points_(points), bounds_(bounds), cell_size_(cell_size_m) {
  IDDE_EXPECTS(cell_size_m > 0.0);
  IDDE_EXPECTS(bounds.width() >= 0.0 && bounds.height() >= 0.0);
  cells_x_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(bounds.width() / cell_size_m)));
  cells_y_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(bounds.height() / cell_size_m)));

  // Counting sort into CSR cells.
  std::vector<std::size_t> counts(cells_x_ * cells_y_ + 1, 0);
  std::vector<std::size_t> point_cell(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    point_cell[i] = cell_of(points_[i]);
    ++counts[point_cell[i] + 1];
  }
  for (std::size_t c = 1; c < counts.size(); ++c) counts[c] += counts[c - 1];
  cell_start_ = counts;
  cell_items_.resize(points_.size());
  std::vector<std::size_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    cell_items_[cursor[point_cell[i]]++] = i;
  }
}

std::size_t SpatialGrid::cell_of(const Point& p) const noexcept {
  const Point q = bounds_.clamp(p);
  auto cx = static_cast<std::size_t>((q.x - bounds_.min.x) / cell_size_);
  auto cy = static_cast<std::size_t>((q.y - bounds_.min.y) / cell_size_);
  cx = std::min(cx, cells_x_ - 1);
  cy = std::min(cy, cells_y_ - 1);
  return cell_index(cx, cy);
}

std::vector<std::size_t> SpatialGrid::query_radius(const Point& center,
                                                   double radius_m) const {
  IDDE_EXPECTS(radius_m >= 0.0);
  std::vector<std::size_t> result;
  if (points_.empty()) return result;

  const Point clamped = bounds_.clamp(center);
  const auto span = static_cast<std::ptrdiff_t>(radius_m / cell_size_) + 1;
  const auto ccx = static_cast<std::ptrdiff_t>(
      (clamped.x - bounds_.min.x) / cell_size_);
  const auto ccy = static_cast<std::ptrdiff_t>(
      (clamped.y - bounds_.min.y) / cell_size_);
  const double r2 = radius_m * radius_m;

  for (std::ptrdiff_t cy = ccy - span; cy <= ccy + span; ++cy) {
    if (cy < 0 || cy >= static_cast<std::ptrdiff_t>(cells_y_)) continue;
    for (std::ptrdiff_t cx = ccx - span; cx <= ccx + span; ++cx) {
      if (cx < 0 || cx >= static_cast<std::ptrdiff_t>(cells_x_)) continue;
      const std::size_t c = cell_index(static_cast<std::size_t>(cx),
                                       static_cast<std::size_t>(cy));
      for (std::size_t s = cell_start_[c]; s < cell_start_[c + 1]; ++s) {
        const std::size_t i = cell_items_[s];
        if (squared_distance_m2(points_[i], center) <= r2) result.push_back(i);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::size_t SpatialGrid::nearest(const Point& center) const {
  // Expanding-ring search; falls back to a full scan once the ring covers
  // the whole grid (correct for any query point, in or out of bounds).
  if (points_.empty()) return npos;
  std::size_t best = npos;
  double best_d2 = std::numeric_limits<double>::infinity();
  const std::size_t max_ring = std::max(cells_x_, cells_y_);
  for (std::size_t ring = 0; ring <= max_ring; ++ring) {
    const double reach = static_cast<double>(ring) * cell_size_;
    const auto candidates = query_radius(center, reach + cell_size_);
    for (const std::size_t i : candidates) {
      const double d2 = squared_distance_m2(points_[i], center);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = i;
      }
    }
    // Any point in an unexplored cell is at least `reach` away.
    if (best != npos && best_d2 <= reach * reach) break;
  }
  return best;
}

}  // namespace idde::geo
