// Fixture: deliberate unit-suffix violations pinned by tests/golden.json.
#pragma once

namespace fixture {

double peak_power(double load_ratio);            // function name lacks unit
void set_latency(double latency, double budget_ms);  // param lacks unit
double elapsed_ms();                             // unit spelled: no finding
double availability();                           // no quantity token: fine
void set_gain(double gain_scale);                // dimensionless: fine

}  // namespace fixture
