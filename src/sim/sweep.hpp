// Parameter sweeps with seeded repetitions — the paper runs every point 50
// times and reports means. Repetitions of a point are independent (fresh
// instance per seed) and run on the shared thread pool.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "coding/fragment.hpp"
#include "fault/injector.hpp"
#include "model/instance_builder.hpp"
#include "sim/runner.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace idde::sim {

struct SweepPoint {
  std::string label;  ///< e.g. "N=25" — the x-axis tick
  model::InstanceParams params;
};

/// Aggregated result of one (point, approach) cell.
struct CellResult {
  std::string approach;
  util::Estimate rate_mbps;
  util::Estimate latency_ms;
  util::Estimate solve_ms;
  /// Resilience columns — populated (n > 0) only when
  /// SweepOptions::fault_profile is set and non-inert.
  util::Estimate degraded_latency_ms;
  util::Estimate availability;
  /// Coded columns — populated only when SweepOptions::coding is set.
  /// Each approach's allocation is re-planned with the coded greedy at the
  /// requested (n, k); coded_degraded_latency_ms additionally requires a
  /// non-inert fault profile.
  util::Estimate coded_latency_ms;
  util::Estimate coded_degraded_latency_ms;
  util::Estimate coded_availability;
};

struct PointResult {
  std::string label;
  std::vector<CellResult> cells;  ///< one per approach, approach order
};

struct SweepOptions {
  int repetitions = 10;
  std::uint64_t base_seed = 42;
  /// Threads for parallel repetitions; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// GameOptions::threads for the game-based approaches built by
  /// run_paper_sweep (1 = serial, 0 = hardware). Repetitions already run
  /// in parallel, so raise this only for single-instance studies (set
  /// `threads = 1` alongside to keep the machine subscribed once).
  std::size_t game_threads = 1;
  /// IDDE-IP anytime budget for run_paper_sweep, milliseconds.
  double ip_budget_ms = 200.0;
  /// Optional fault profile (not owned; must outlive the sweep). When set
  /// and non-inert, each repetition draws a FaultPlan from the instance
  /// seed xor `fault_seed_offset` and every approach is additionally
  /// scored with fault::evaluate_resilience under `repair_policy`,
  /// filling CellResult::degraded_latency_ms / availability. Null (the
  /// default) leaves the sweep bit-identical to the pre-fault harness.
  const fault::FaultProfile* fault_profile = nullptr;
  std::uint64_t fault_seed_offset = 0x4a17;
  fault::RepairPolicy repair_policy = fault::RepairPolicy::kNone;
  /// Optional erasure-coding config (not owned; must outlive the sweep).
  /// When set, every cell additionally re-plans the approach's allocation
  /// with the coded greedy at this (n, k) and fills the coded_* columns
  /// (coded resilience when a fault profile is also active). Null (the
  /// default) leaves the sweep bit-identical to the replication harness.
  const coding::FragmentConfig* coding = nullptr;
  /// Progress callback (invoked once per completed point, serialised).
  std::function<void(const PointResult&)> on_point;
};

/// Runs every approach on every point x repetition and aggregates.
/// Instances depend only on (point, repetition), so all approaches see
/// identical inputs — the paper's paired-comparison protocol.
[[nodiscard]] std::vector<PointResult> run_sweep(
    const std::vector<SweepPoint>& points,
    const std::vector<core::ApproachPtr>& approaches,
    const SweepOptions& options);

/// Convenience wrapper: builds the paper's five approaches from
/// `options.ip_budget_ms` / `options.game_threads` and runs the sweep.
[[nodiscard]] std::vector<PointResult> run_paper_sweep(
    const std::vector<SweepPoint>& points, const SweepOptions& options);

}  // namespace idde::sim
