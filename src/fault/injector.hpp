// FaultInjector: the bridge from a FaultPlan (pure schedule data) to the
// degraded worlds the rest of the stack evaluates against. The injector
// slices [0, horizon) into epochs at the plan's edge-availability change
// times and precomputes, per epoch, the surviving-server mask, the
// degraded graph (an edge survives iff both endpoints and the link are
// up) and its all-pairs cost matrix. Consumers — the analytic resilience
// evaluator below and des::FlowLevelSimulator — index epochs by time and
// never touch the plan's interval lists on the hot path.
//
// Everything here is immutable after construction (the injector is built
// once, then only read), so the fault layer adds no locks and stays
// outside the lock hierarchy entirely — see DESIGN.md §10.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/strategy.hpp"
#include "fault/fault_plan.hpp"
#include "model/instance.hpp"
#include "net/graph.hpp"
#include "net/shortest_path.hpp"

namespace idde::fault {

/// One maximal interval of constant edge availability.
struct AvailabilitySnapshot {
  double start_s = 0.0;
  double end_s = 0.0;                  ///< +inf for the final epoch
  std::vector<std::uint8_t> server_up;  ///< per-server liveness
  bool all_up = false;                 ///< fast path: nothing degraded
  net::Graph graph;                    ///< surviving edges only
  net::CostMatrix costs;               ///< all-pairs over `graph`
};

class FaultInjector {
 public:
  /// Precomputes every epoch eagerly. Cost: one Dijkstra sweep per epoch
  /// with at least one fault; all-up epochs share nothing but are cheap
  /// (the fault-free matrix is rebuilt, not aliased, to keep the struct
  /// self-contained).
  FaultInjector(const model::ProblemInstance& instance,
                const FaultPlan& plan);

  [[nodiscard]] std::size_t epoch_count() const noexcept {
    return epochs_.size();
  }
  [[nodiscard]] const AvailabilitySnapshot& epoch(std::size_t e) const {
    return epochs_[e];
  }

  /// Index of the epoch containing time `t` (t >= 0).
  [[nodiscard]] std::size_t epoch_index(double t) const;
  [[nodiscard]] const AvailabilitySnapshot& snapshot_at(double t) const {
    return epochs_[epoch_index(t)];
  }

  [[nodiscard]] const FaultPlan& plan() const noexcept { return *plan_; }

 private:
  const FaultPlan* plan_;
  std::vector<AvailabilitySnapshot> epochs_;
  std::vector<double> starts_;  ///< sorted epoch start times
};

/// What to do with sigma when servers die.
enum class RepairPolicy : std::uint8_t {
  kNone = 0,    ///< ride it out: surviving replicas + cloud fallback only
  kGreedy = 1,  ///< re-heal sigma per epoch via core::RepairPlanner
};

/// Time-weighted analytic resilience metrics over the plan's horizon.
struct ResilienceReport {
  double fault_free_latency_ms = 0.0;  ///< L_avg with no faults (Eq. 9)
  double degraded_latency_ms = 0.0;    ///< time-weighted L_avg under faults
  /// Fraction of (request, time) mass served at the fault-free primary
  /// tier; 1.0 when the plan is inert.
  double availability = 1.0;
  /// Time-weighted fraction served per core::FallbackTier.
  std::array<double, 3> tier_fraction{};
  std::size_t epochs = 0;
  std::size_t lost_placements = 0;    ///< total across repaired epochs
  std::size_t repair_placements = 0;  ///< total across repaired epochs
};

/// Evaluates a solved strategy against a fault plan: for every epoch,
/// every request is resolved through core::resolve_with_failover over the
/// epoch's surviving replicas (optionally re-healed by RepairPolicy) and
/// the results are weighted by epoch length over [0, horizon). An inert
/// plan short-circuits to the fault-free metrics exactly.
[[nodiscard]] ResilienceReport evaluate_resilience(
    const model::ProblemInstance& instance, const core::Strategy& strategy,
    const FaultPlan& plan, RepairPolicy policy = RepairPolicy::kNone);

}  // namespace idde::fault
