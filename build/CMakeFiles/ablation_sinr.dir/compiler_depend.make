# Empty compiler generated dependencies file for ablation_sinr.
# This may be replaced when dependencies are built.
