# Empty compiler generated dependencies file for fig5_data.
# This may be replaced when dependencies are built.
