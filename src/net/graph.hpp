// Undirected weighted graph over edge servers, stored as CSR adjacency.
// Edge weights are transfer costs in seconds-per-megabyte (1 / link speed),
// so a shortest path in this graph is the fastest multi-hop transfer route.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace idde::net {

struct Edge {
  std::size_t from = 0;
  std::size_t to = 0;
  double weight = 0.0;  ///< seconds per MB across this link
};

struct Neighbor {
  std::size_t node = 0;
  double weight = 0.0;
};

class Graph {
 public:
  /// Builds from an undirected edge list; parallel edges are allowed and
  /// resolved by the shortest-path layer (the cheaper one wins naturally).
  Graph(std::size_t node_count, const std::vector<Edge>& edges);

  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return adjacency_.size() / 2;
  }

  [[nodiscard]] std::span<const Neighbor> neighbors(std::size_t node) const;

  /// True when every node is reachable from node 0 (or the graph is empty).
  [[nodiscard]] bool is_connected() const;

 private:
  std::size_t node_count_;
  std::vector<std::size_t> offsets_;   // size node_count_ + 1
  std::vector<Neighbor> adjacency_;    // both directions of each edge
};

}  // namespace idde::net
