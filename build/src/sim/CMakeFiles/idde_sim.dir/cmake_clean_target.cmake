file(REMOVE_RECURSE
  "libidde_sim.a"
)
