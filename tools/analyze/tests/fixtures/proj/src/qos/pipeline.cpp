// Fixture: queue-bound rule, one violation and one documented bound.
#include <queue>

namespace fixture {

std::queue<int> pending;  // unbounded-queue: no documented bound

// capacity-bound: drained every tick; never exceeds the fan-in of 4
std::queue<int> bounded_ok;

}  // namespace fixture
