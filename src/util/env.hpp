// Environment-variable knobs shared by benches and tests (repetition counts,
// the IDDE-IP time budget), so the full suite can be scaled for CI without
// code edits.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace idde::util {

/// Returns env var value, or fallback when unset/empty.
[[nodiscard]] std::string env_or(std::string_view name, std::string fallback);
[[nodiscard]] std::int64_t env_int_or(std::string_view name,
                                      std::int64_t fallback);
[[nodiscard]] double env_double_or(std::string_view name, double fallback);

/// Repetitions per experiment point. Env: IDDE_REPS (default `fallback`).
[[nodiscard]] int experiment_reps(int fallback);

/// Time budget for the IDDE-IP anytime solver in milliseconds.
/// Env: IDDE_IP_BUDGET_MS (default `fallback`).
[[nodiscard]] double ip_budget_ms(double fallback);

/// Worker threads for the IDDE-U game's best-response fan-out
/// (GameOptions::threads; 1 = serial, 0 = hardware concurrency).
/// Env: IDDE_GAME_THREADS (default `fallback`).
[[nodiscard]] std::size_t game_threads(std::size_t fallback);

}  // namespace idde::util
