#include "viz/ascii_map.hpp"

#include <algorithm>
#include <vector>

#include "util/assert.hpp"
#include "util/format.hpp"

namespace idde::viz {

std::string render_map(const model::ProblemInstance& instance,
                       const MapOptions& options) {
  IDDE_EXPECTS(options.width_chars >= 8 && options.height_chars >= 4);
  // World extent: bounding box of all positions, padded slightly.
  double min_x = 1e300;
  double min_y = 1e300;
  double max_x = -1e300;
  double max_y = -1e300;
  const auto extend = [&](const geo::Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  };
  for (const auto& s : instance.servers()) extend(s.position);
  for (const auto& u : instance.users()) extend(u.position);
  if (min_x > max_x) {  // no entities at all
    min_x = min_y = 0.0;
    max_x = max_y = 1.0;
  }
  const double pad_x = std::max(1.0, (max_x - min_x) * 0.02);
  const double pad_y = std::max(1.0, (max_y - min_y) * 0.02);
  min_x -= pad_x;
  max_x += pad_x;
  min_y -= pad_y;
  max_y += pad_y;

  const std::size_t w = options.width_chars;
  const std::size_t h = options.height_chars;
  const double cell_w = (max_x - min_x) / static_cast<double>(w);
  const double cell_h = (max_y - min_y) / static_cast<double>(h);
  std::vector<char> grid(w * h, ' ');

  const auto cell_of = [&](const geo::Point& p) {
    auto cx = static_cast<std::size_t>((p.x - min_x) / cell_w);
    auto cy = static_cast<std::size_t>((p.y - min_y) / cell_h);
    cx = std::min(cx, w - 1);
    cy = std::min(cy, h - 1);
    // y grows upward in world space, downward on screen.
    return (h - 1 - cy) * w + cx;
  };
  const auto cell_center = [&](std::size_t cx, std::size_t cy) {
    return geo::Point{min_x + (static_cast<double>(cx) + 0.5) * cell_w,
                      min_y + (static_cast<double>(cy) + 0.5) * cell_h};
  };

  // Coverage shading first (lowest precedence).
  if (options.show_coverage) {
    for (std::size_t cy = 0; cy < h; ++cy) {
      for (std::size_t cx = 0; cx < w; ++cx) {
        const geo::Point center = cell_center(cx, cy);
        for (const auto& s : instance.servers()) {
          if (geo::distance_m(center, s.position) <= s.coverage_radius_m) {
            grid[(h - 1 - cy) * w + cx] = '.';
            break;
          }
        }
      }
    }
  }

  // Users.
  if (options.allocation != nullptr) {
    IDDE_EXPECTS(options.allocation->size() == instance.user_count());
  }
  for (std::size_t j = 0; j < instance.user_count(); ++j) {
    char glyph = '+';
    if (options.allocation != nullptr) {
      const core::ChannelSlot slot = (*options.allocation)[j];
      glyph = slot.allocated()
                  ? static_cast<char>('a' + static_cast<char>(slot.server % 26))
                  : '?';
    }
    grid[cell_of(instance.user(j).position)] = glyph;
  }

  // Servers on top.
  for (const auto& s : instance.servers()) {
    grid[cell_of(s.position)] = '#';
  }

  std::string out;
  out.reserve((w + 3) * (h + 4));
  const std::string border(w + 2, '-');
  out += border + "\n";
  for (std::size_t row = 0; row < h; ++row) {
    out.push_back('|');
    out.append(grid.data() + row * w, w);
    out += "|\n";
  }
  out += border + "\n";
  out += util::format("# edge server ({}), ", instance.server_count());
  if (options.allocation != nullptr) {
    out += "a-z user by serving server, ? unallocated user, ";
  } else {
    out += "+ user, ";
  }
  out += util::format(". coverage; {} x {} m\n",
                      util::fixed(max_x - min_x, 0),
                      util::fixed(max_y - min_y, 0));
  return out;
}

}  // namespace idde::viz
