#!/usr/bin/env python3
"""idde_analyze: project-wide static analysis for the idde tree.

Usage:
  tools/analyze/idde_analyze.py [FILE...] [options]

Options:
  --root DIR          analysis root (default: the repository root)
  --config FILE       JSON Config overrides (fixtures/self-tests)
  --rules a,b,c       run only the named rules (default: all)
  --list-rules        print the rule catalog and exit
  --format text|json  output format (default: text)
  --out FILE          write the report to FILE instead of stdout
  --baseline FILE     suppression baseline (default: tools/analyze/
                      baseline.json under the root, when present)
  --no-baseline       ignore any baseline file
  --jobs N            worker processes (default: min(8, cpus); 1 = serial)

Exit status: 0 clean; 1 findings or stale baseline entries; 2 usage error
(bad config, malformed baseline, unknown rule).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from engine import rules as rule_registry           # noqa: E402
from engine.baseline import BaselineError, load_baseline  # noqa: E402
from engine.config import Config                    # noqa: E402
from engine.runner import render, run               # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[2]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="idde_analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="*")
    parser.add_argument("--root", default=None)
    parser.add_argument("--config", default=None)
    parser.add_argument("--rules", default=None)
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--out", default=None)
    parser.add_argument("--baseline", default=None)
    parser.add_argument("--no-baseline", action="store_true")
    parser.add_argument("--jobs", type=int, default=0)
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(rule_registry.ALL_RULES.items()):
            print(f"{rule:20} {desc}")
        return 0

    try:
        root = Path(args.root).resolve() if args.root else REPO_ROOT
        if not root.is_dir():
            raise ValueError(f"--root {root} is not a directory")
        cfg = Config.load(Path(args.config) if args.config else None)

        active = frozenset(rule_registry.ALL_RULES)
        if args.rules:
            requested = {r.strip() for r in args.rules.split(",") if r.strip()}
            unknown = requested - active
            if unknown:
                raise ValueError(
                    f"unknown rule(s): {', '.join(sorted(unknown))} "
                    "(see --list-rules)")
            active = frozenset(requested)

        entries = []
        if not args.no_baseline:
            baseline_path = (Path(args.baseline) if args.baseline
                             else root / "tools" / "analyze" / "baseline.json")
            if args.baseline or baseline_path.is_file():
                entries = load_baseline(baseline_path)

        result = run(root, cfg, active, entries,
                     only=args.files or None, jobs=args.jobs)
    except (BaselineError, ValueError, FileNotFoundError) as err:
        print(f"idde_analyze: error: {err}", file=sys.stderr)
        return 2

    render(result, args.format, args.out)
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
