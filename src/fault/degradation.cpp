#include "fault/degradation.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>

#include "fault/fault_plan.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"

namespace idde::fault {

namespace {

// Fixed stream-id base for per-server gray trajectories; disjoint from the
// FaultPlan bases so a composed (FaultPlan, DegradationPlan) pair drawn
// from the same master seed stays decorrelated.
constexpr std::uint64_t kGrayStream = 0x96a70000;
constexpr std::uint64_t kGrayLossStream = 0x96a7105e;

constexpr std::string_view kFormatTag = "idde-degradation-plan-v1";

/// Loss rate of a segment, scaled by its severity relative to the peak.
double segment_loss(double multiplier, double peak, double loss_prob_max) {
  if (loss_prob_max <= 0.0 || multiplier <= 1.0) return 0.0;
  const double severity = peak > 1.0 ? (multiplier - 1.0) / (peak - 1.0) : 1.0;
  return loss_prob_max * severity;
}

std::string u64_hex(std::uint64_t value) {
  char buf[17];
  const auto [end, ec] = std::to_chars(buf, buf + 16, value, 16);
  IDDE_EXPECTS(ec == std::errc{});
  return std::string(buf, end);
}

std::uint64_t hex_u64(const util::Json& value, std::string_view what) {
  if (!value.is_string()) {
    throw util::JsonError(std::string(what) + ": expected hex string");
  }
  const std::string& hex = value.as_string();
  if (hex.empty() || hex.size() > 16) {
    throw util::JsonError(std::string(what) + ": bad hex length");
  }
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(hex.data(), hex.data() + hex.size(), out, 16);
  if (ec != std::errc{} || ptr != hex.data() + hex.size()) {
    throw util::JsonError(std::string(what) + ": bad hex digits");
  }
  return out;
}

}  // namespace

DegradationPlan DegradationPlan::generate(
    const model::ProblemInstance& instance, const DegradationProfile& profile,
    std::uint64_t seed) {
  DegradationPlan plan;
  if (profile.inert()) return plan;  // inert profile => inert plan

  IDDE_EXPECTS(profile.horizon_s > 0.0);
  IDDE_EXPECTS(profile.gray_fraction <= 1.0);
  IDDE_EXPECTS(profile.peak_multiplier_min >= 1.0 &&
               profile.peak_multiplier_max >= profile.peak_multiplier_min);
  IDDE_EXPECTS(profile.loss_prob_max >= 0.0 && profile.loss_prob_max < 1.0);
  IDDE_EXPECTS(profile.onset_latest_s >= 0.0 &&
               profile.onset_latest_s < profile.horizon_s);
  IDDE_EXPECTS(profile.ramp_weight >= 0.0 && profile.plateau_weight >= 0.0 &&
               profile.flap_weight >= 0.0);
  const double total_weight =
      profile.ramp_weight + profile.plateau_weight + profile.flap_weight;
  IDDE_EXPECTS(total_weight > 0.0);
  IDDE_EXPECTS(profile.ramp_s > 0.0 && profile.ramp_steps > 0);
  IDDE_EXPECTS(profile.plateau_s > 0.0);
  IDDE_EXPECTS(profile.flap_period_s > 0.0);

  plan.set_horizon(profile.horizon_s);
  const util::Rng master(seed);
  {
    util::Rng loss = master.fork(kGrayLossStream);
    plan.loss_seed_ = loss.generator()();
  }

  for (std::size_t i = 0; i < instance.server_count(); ++i) {
    // One forked stream per server: topology-order independent, and a
    // server's whole trajectory is a pure function of (seed, i).
    util::Rng rng = master.fork(kGrayStream + i);
    if (!rng.bernoulli(profile.gray_fraction)) continue;

    const double shape_draw = rng.uniform(0.0, total_weight);
    const double onset = rng.uniform(0.0, profile.onset_latest_s);
    const double peak =
        rng.uniform(profile.peak_multiplier_min, profile.peak_multiplier_max);
    const double horizon = profile.horizon_s;

    const auto add = [&](double start, double end, double multiplier) {
      start = std::min(start, horizon);
      end = std::min(end, horizon);
      if (end <= start || multiplier <= 1.0) return;
      plan.add_server_segment(
          i, GraySegment{start, end, multiplier,
                         segment_loss(multiplier, peak,
                                      profile.loss_prob_max)});
    };

    if (shape_draw < profile.ramp_weight) {
      // Slow ramp: climb to the peak in ramp_steps equal stairs, hold.
      const double step_s = profile.ramp_s /
                            static_cast<double>(profile.ramp_steps);
      for (std::size_t s = 0; s < profile.ramp_steps; ++s) {
        const double frac = static_cast<double>(s + 1) /
                            static_cast<double>(profile.ramp_steps);
        const double mult = 1.0 + frac * (peak - 1.0);
        const double start = onset + static_cast<double>(s) * step_s;
        // The end must be the *same expression* as the next step's start:
        // `start + step_s` can differ from it in the last ulp and produce
        // an overlapping pair.
        const double end =
            s + 1 == profile.ramp_steps
                ? horizon  // hold the peak to the horizon
                : onset + static_cast<double>(s + 1) * step_s;
        add(start, end, mult);
      }
    } else if (shape_draw < profile.ramp_weight + profile.plateau_weight) {
      // Metastable plateau: peak for plateau_s, then full recovery.
      add(onset, onset + profile.plateau_s, peak);
    } else {
      // Flapping: peak / healthy alternation until the horizon.
      const double half = profile.flap_period_s / 2.0;
      for (double start = onset; start < horizon;
           start += profile.flap_period_s) {
        add(start, start + half, peak);
      }
    }
  }
  return plan;
}

void DegradationPlan::add_server_segment(std::size_t server,
                                         GraySegment segment) {
  IDDE_EXPECTS(segment.start_s >= 0.0 && segment.end_s > segment.start_s);
  IDDE_EXPECTS(segment.latency_multiplier >= 1.0 &&
               std::isfinite(segment.latency_multiplier));
  IDDE_EXPECTS(segment.loss_prob >= 0.0 && segment.loss_prob < 1.0);
  if (server >= segments_.size()) segments_.resize(server + 1);
  auto& segments = segments_[server];
  IDDE_EXPECTS(segments.empty() ||
               segment.start_s >= segments.back().end_s);
  for (const double t : {segment.start_s, segment.end_s}) {
    const auto it = std::lower_bound(changes_.begin(), changes_.end(), t);
    if (it == changes_.end() || *it != t) changes_.insert(it, t);
  }
  horizon_s_ = std::max(horizon_s_, segment.end_s);
  segments.push_back(segment);
}

void DegradationPlan::set_horizon(double horizon_s) {
  IDDE_EXPECTS(horizon_s >= horizon_s_);
  horizon_s_ = horizon_s;
}

bool DegradationPlan::inert() const noexcept {
  for (const auto& segments : segments_) {
    if (!segments.empty()) return false;
  }
  return true;
}

const GraySegment* DegradationPlan::segment_at(std::size_t server,
                                               double t) const {
  if (server >= segments_.size()) return nullptr;
  const auto& segments = segments_[server];
  const auto it = std::upper_bound(
      segments.begin(), segments.end(), t,
      [](double value, const GraySegment& s) { return value < s.start_s; });
  if (it == segments.begin()) return nullptr;
  const GraySegment& candidate = *std::prev(it);
  return t < candidate.end_s ? &candidate : nullptr;
}

double DegradationPlan::latency_multiplier(std::size_t server,
                                           double t) const {
  const GraySegment* s = segment_at(server, t);
  return s != nullptr ? s->latency_multiplier : 1.0;
}

double DegradationPlan::loss_prob(std::size_t server, double t) const {
  const GraySegment* s = segment_at(server, t);
  return s != nullptr ? s->loss_prob : 0.0;
}

bool DegradationPlan::leg_lost(std::size_t server, std::uint64_t flow_id,
                               std::size_t attempt, double t) const {
  const double rate = loss_prob(server, t);
  if (rate <= 0.0) return false;
  // Stateless per-leg hash (same idiom as FaultPlan::replica_corrupted):
  // order- and thread-independent by design.
  util::SplitMix64 mix(loss_seed_ ^ (0x100000001b3ULL * (server + 1)) ^
                       (0x9e3779b97f4a7c15ULL * (flow_id + 1)) ^ attempt);
  const double u = static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  return u < rate;
}

double DegradationPlan::next_change_after(double t) const {
  const auto it = std::upper_bound(changes_.begin(), changes_.end(), t);
  return it == changes_.end() ? kNeverChanges : *it;
}

util::Json degradation_to_json(const DegradationPlan& plan) {
  util::JsonObject root;
  root.emplace("format", std::string(kFormatTag));
  root.emplace("horizon_s", plan.horizon_s());
  root.emplace("loss_seed", u64_hex(plan.loss_seed()));
  util::JsonArray servers;
  const auto& all = plan.server_segments();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].empty()) continue;
    util::JsonObject entry;
    entry.emplace("server", i);
    util::JsonArray segments;
    for (const GraySegment& s : all[i]) {
      util::JsonObject seg;
      seg.emplace("start_s", s.start_s);
      seg.emplace("end_s", s.end_s);
      seg.emplace("latency_multiplier", s.latency_multiplier);
      seg.emplace("loss_prob", s.loss_prob);
      segments.emplace_back(std::move(seg));
    }
    entry.emplace("segments", std::move(segments));
    servers.emplace_back(std::move(entry));
  }
  root.emplace("servers", std::move(servers));
  return util::Json(std::move(root));
}

DegradationPlan degradation_from_json(const model::ProblemInstance& instance,
                                      const util::Json& json) {
  if (!json.is_object()) {
    throw util::JsonError("degradation plan: expected an object");
  }
  const util::Json* format = json.find("format");
  if (format == nullptr || !format->is_string() ||
      format->as_string() != kFormatTag) {
    throw util::JsonError("degradation plan: missing or wrong format tag");
  }
  DegradationPlan plan;
  plan.set_loss_seed(hex_u64(json.at("loss_seed"), "degradation loss_seed"));
  const double horizon =
      util::as_finite(json.at("horizon_s"), 0.0, "degradation horizon_s");

  const util::Json& servers = json.at("servers");
  if (!servers.is_array()) {
    throw util::JsonError("degradation servers: expected an array");
  }
  std::vector<std::uint8_t> seen(instance.server_count(), 0);
  for (const util::Json& entry : servers.as_array()) {
    if (!entry.is_object()) {
      throw util::JsonError("degradation server entry: expected an object");
    }
    const std::size_t server = util::as_index(
        entry.at("server"), instance.server_count(), "degradation server");
    if (seen[server] != 0) {
      throw util::JsonError("degradation server listed twice");
    }
    seen[server] = 1;
    const util::Json& segments = entry.at("segments");
    if (!segments.is_array() || segments.as_array().empty()) {
      throw util::JsonError(
          "degradation segments: expected a non-empty array");
    }
    double prev_end = 0.0;
    for (const util::Json& seg : segments.as_array()) {
      if (!seg.is_object()) {
        throw util::JsonError("degradation segment: expected an object");
      }
      GraySegment s;
      s.start_s = util::as_finite(seg.at("start_s"), 0.0, "segment start_s");
      s.end_s = util::as_finite(seg.at("end_s"), 0.0, "segment end_s");
      s.latency_multiplier = util::as_finite(
          seg.at("latency_multiplier"), 1.0, "segment latency_multiplier");
      s.loss_prob =
          util::as_finite(seg.at("loss_prob"), 0.0, "segment loss_prob");
      if (s.end_s <= s.start_s) {
        throw util::JsonError("segment end_s must exceed start_s");
      }
      if (s.loss_prob >= 1.0) {
        throw util::JsonError("segment loss_prob must be < 1");
      }
      if (s.start_s < prev_end) {
        throw util::JsonError(
            "degradation segments must be sorted and disjoint");
      }
      if (s.end_s > horizon) {
        throw util::JsonError("segment extends past horizon_s");
      }
      prev_end = s.end_s;
      plan.add_server_segment(server, s);
    }
  }
  plan.set_horizon(horizon);  // validated >= every segment end above
  return plan;
}

std::string degradation_to_string(const DegradationPlan& plan, int indent) {
  return degradation_to_json(plan).dump(indent);
}

DegradationPlan degradation_from_string(const model::ProblemInstance& instance,
                                        const std::string& text) {
  return degradation_from_json(instance, util::Json::parse(text));
}

}  // namespace idde::fault
