#include "sim/paper.hpp"

#include "util/format.hpp"
#include "util/table.hpp"

namespace idde::sim {

model::InstanceParams paper_default_params() {
  model::InstanceParams params;  // defaults already follow Section 4.2
  params.server_count = 30;
  params.user_count = 200;
  params.data_count = 5;
  params.density = 1.0;
  return params;
}

std::vector<SweepPoint> paper_set1() {
  std::vector<SweepPoint> points;
  for (std::size_t n = 20; n <= 50; n += 5) {
    model::InstanceParams params = paper_default_params();
    params.server_count = n;
    points.push_back(SweepPoint{util::format("N={}", n), params});
  }
  return points;
}

std::vector<SweepPoint> paper_set2() {
  std::vector<SweepPoint> points;
  for (std::size_t m = 50; m <= 350; m += 50) {
    model::InstanceParams params = paper_default_params();
    params.user_count = m;
    points.push_back(SweepPoint{util::format("M={}", m), params});
  }
  return points;
}

std::vector<SweepPoint> paper_set3() {
  std::vector<SweepPoint> points;
  for (std::size_t k = 2; k <= 8; ++k) {
    model::InstanceParams params = paper_default_params();
    params.data_count = k;
    points.push_back(SweepPoint{util::format("K={}", k), params});
  }
  return points;
}

std::vector<SweepPoint> paper_set4() {
  std::vector<SweepPoint> points;
  for (int step = 0; step <= 5; ++step) {
    const double density = 1.0 + 0.4 * step;
    model::InstanceParams params = paper_default_params();
    params.density = density;
    points.push_back(
        SweepPoint{util::format("density={}", util::fixed(density, 1)),
                   params});
  }
  return points;
}

std::vector<PaperSet> paper_sets() {
  return {
      PaperSet{"Set #1", "N", "Fig. 3", paper_set1()},
      PaperSet{"Set #2", "M", "Fig. 4", paper_set2()},
      PaperSet{"Set #3", "K", "Fig. 5", paper_set3()},
      PaperSet{"Set #4", "density", "Fig. 6", paper_set4()},
  };
}

std::string table2_text() {
  util::TextTable table({"", "N", "M", "K", "density"});
  table.start_row().add("Set #1").add("20,...,50").add("200").add("5").add(
      "1.0");
  table.start_row().add("Set #2").add("30").add("50,...,350").add("5").add(
      "1.0");
  table.start_row().add("Set #3").add("30").add("200").add("2,...,8").add(
      "1.0");
  table.start_row().add("Set #4").add("30").add("200").add("5").add(
      "1.0,...,3.0");
  return "Table 2: Parameter Settings\n" + table.to_string();
}

}  // namespace idde::sim
