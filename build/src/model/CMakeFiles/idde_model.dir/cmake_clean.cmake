file(REMOVE_RECURSE
  "CMakeFiles/idde_model.dir/instance.cpp.o"
  "CMakeFiles/idde_model.dir/instance.cpp.o.d"
  "CMakeFiles/idde_model.dir/instance_builder.cpp.o"
  "CMakeFiles/idde_model.dir/instance_builder.cpp.o.d"
  "CMakeFiles/idde_model.dir/instance_io.cpp.o"
  "CMakeFiles/idde_model.dir/instance_io.cpp.o.d"
  "CMakeFiles/idde_model.dir/request_matrix.cpp.o"
  "CMakeFiles/idde_model.dir/request_matrix.cpp.o.d"
  "CMakeFiles/idde_model.dir/validation.cpp.o"
  "CMakeFiles/idde_model.dir/validation.cpp.o.d"
  "libidde_model.a"
  "libidde_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idde_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
