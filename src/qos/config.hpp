// Overload-protection configuration (the QoS layer).
//
// The paper's Eq. 8/9 latency model is load-oblivious: every request is
// served, instantly admitted, with the full link bandwidth. Real edge
// storage deployments die differently — offered load exceeds capacity,
// queues grow without bound, retries amplify the overload, and latency
// diverges while goodput collapses. The qos:: layer gives the flow-level
// DES (des::FlowLevelSimulator) the four standard defenses:
//
//   arrivals      open-loop arrival generation (Poisson / flash-crowd),
//                 so offered load can exceed capacity instead of replaying
//                 the fixed request batch once;
//   admission     per-server bounded queues with pluggable shedding;
//   retry_budget  a global token bucket capping retries as a fraction of
//                 fresh arrivals (no retry storms);
//   breaker       per-server circuit breakers (closed/open/half-open on a
//                 rolling failure rate) forcing cloud-direct delivery
//                 while open.
//
// Contract (mirrors fault::FaultPlan): every knob defaults to inert, and a
// QosConfig whose inert() is true makes the simulator take the exact
// pre-QoS code path — results are bit-identical to a config-less run.
// All behaviour is a pure function of (instance, strategy, config, seed):
// the engine is single-threaded and draws only from explicitly forked rng
// streams, so thread count and wall-clock never change a result.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/json.hpp"

namespace idde::qos {

/// How request arrivals are generated.
enum class ArrivalProcess : std::uint8_t {
  /// The pre-QoS behaviour: each (user, item) request occurs exactly once,
  /// jittered over FlowSimOptions::arrival_window_s. Inert.
  kReplay = 0,
  /// Poisson: each base request spawns on average `load_multiplier`
  /// arrivals, placed uniformly over [0, window_s) — the order-statistics
  /// form of a Poisson process conditioned on its count.
  kPoisson = 1,
  /// Flash crowd: as kPoisson, but `flash_fraction` of the arrivals are
  /// compressed into [flash_start_s, flash_start_s + flash_width_s).
  kFlashCrowd = 2,
};

enum class SheddingPolicy : std::uint8_t {
  /// Never drop anything: the admission queue is unbounded (classic
  /// congestion collapse under sustained overload — the control group).
  kNone = 0,
  /// Drop the arriving request when the bounded queue is full.
  kRejectNewest = 1,
  /// Drop requests whose deadline is already unmeetable (optimistic
  /// service estimate), at arrival and again when they reach the head of
  /// the queue; also drops on queue overflow.
  kDeadlineAware = 2,
};

struct ArrivalConfig {
  ArrivalProcess process = ArrivalProcess::kReplay;
  /// Mean offered copies per base request (the "x capacity" axis).
  double load_multiplier = 1.0;
  /// Arrivals land in [0, window_s).
  double window_s = 30.0;
  // Flash-crowd shape (kFlashCrowd only).
  double flash_fraction = 0.5;
  double flash_start_s = 5.0;
  double flash_width_s = 1.0;

  [[nodiscard]] bool inert() const noexcept {
    return process == ArrivalProcess::kReplay;
  }
};

struct AdmissionConfig {
  SheddingPolicy policy = SheddingPolicy::kNone;
  /// Concurrent in-service requests per serving server; 0 = unlimited
  /// (admission control disabled — the pre-QoS fluid model).
  std::size_t service_slots = 0;
  /// Bounded-queue capacity per server. Ignored under kNone (unbounded by
  /// design); 0 under the shedding policies means "no waiting room".
  std::size_t queue_capacity = 16;
  /// Per-request SLO deadline measured from arrival; 0 disables deadline
  /// accounting (and kDeadlineAware degenerates to kRejectNewest).
  double deadline_s = 0.0;
  /// Local hits are no longer free under admission control: serving a
  /// cached item costs this much per MB (storage/NIC service time). Only
  /// applied when service_slots > 0.
  double local_service_s_per_mb = 0.0;

  [[nodiscard]] bool inert() const noexcept {
    return service_slots == 0 && policy == SheddingPolicy::kNone &&
           deadline_s <= 0.0;
  }
};

struct RetryBudgetConfig {
  /// Tokens granted per fresh arrival; a retry costs one token. Negative =
  /// unlimited retries (the pre-QoS behaviour). 0.1 caps retries at ~10%
  /// of fresh arrivals.
  double ratio = -1.0;
  /// Token-bucket capacity (burst allowance).
  double burst = 16.0;

  [[nodiscard]] bool inert() const noexcept { return ratio < 0.0; }
};

struct BreakerConfig {
  bool enabled = false;
  /// Rolling outcome window per server (delivery successes/failures).
  std::size_t window = 20;
  /// Minimum outcomes in the window before the breaker may trip.
  std::size_t min_samples = 8;
  /// Open when failures / outcomes >= this fraction.
  double failure_threshold = 0.5;
  /// Time spent open before probing again.
  double open_duration_s = 5.0;
  /// Concurrent trial deliveries allowed while half-open.
  std::size_t half_open_probes = 2;
  /// Total probes a single half-open episode may launch before the breaker
  /// gives up and re-opens. A flapping gray server alternately succeeds and
  /// fails, so without this cap it can hold the breaker half-open forever.
  /// 0 = unlimited (the pre-gray behaviour).
  std::size_t half_open_probe_cap = 0;
  /// Sustained-latency trip: a *completed* delivery whose observed seconds
  /// reach slow_ratio × expected seconds counts as a failure outcome, so
  /// gray (slow-not-dead) servers trip the breaker too. 0 = disabled.
  double slow_ratio = 0.0;

  [[nodiscard]] bool inert() const noexcept { return !enabled; }
};

struct QosConfig {
  ArrivalConfig arrivals;
  AdmissionConfig admission;
  RetryBudgetConfig retry_budget;
  BreakerConfig breaker;

  /// True when every subsystem is disabled — the simulator takes the exact
  /// pre-QoS code path (bit-identical results, enforced by test).
  [[nodiscard]] bool inert() const noexcept {
    return arrivals.inert() && admission.inert() && retry_budget.inert() &&
           breaker.inert();
  }
};

/// JSON (de)serialisation, same conventions as sim::params_to_json: every
/// field is written; reading applies present fields on top of defaults.
[[nodiscard]] util::Json qos_to_json(const QosConfig& config);
[[nodiscard]] QosConfig qos_from_json(const util::Json& json);

[[nodiscard]] const char* to_string(ArrivalProcess process);
[[nodiscard]] const char* to_string(SheddingPolicy policy);
/// Parses the to_string names; throws util::JsonError on unknown names.
[[nodiscard]] ArrivalProcess arrival_process_from_string(std::string_view s);
[[nodiscard]] SheddingPolicy shedding_policy_from_string(std::string_view s);

}  // namespace idde::qos
