// Instance-level sanity checks, run by the harness on every generated
// instance in debug sweeps and by tests on random instances.
#pragma once

#include <string>
#include <vector>

#include "model/instance.hpp"

namespace idde::model {

/// Returns a list of human-readable violations (empty = valid).
[[nodiscard]] std::vector<std::string> validate_instance(
    const ProblemInstance& instance);

/// Summary statistics used by tests and DESIGN.md's substitution argument
/// (coverage multiplicity should look like the EUA extraction).
struct CoverageStats {
  std::size_t uncovered_users = 0;
  double mean_coverage = 0.0;   ///< average |V_j|
  std::size_t max_coverage = 0;
};

[[nodiscard]] CoverageStats coverage_stats(const ProblemInstance& instance);

}  // namespace idde::model
