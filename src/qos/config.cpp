#include "qos/config.hpp"

#include "util/format.hpp"

namespace idde::qos {

using util::Json;
using util::JsonObject;

const char* to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kReplay: return "replay";
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kFlashCrowd: return "flash-crowd";
  }
  return "replay";
}

const char* to_string(SheddingPolicy policy) {
  switch (policy) {
    case SheddingPolicy::kNone: return "none";
    case SheddingPolicy::kRejectNewest: return "reject-newest";
    case SheddingPolicy::kDeadlineAware: return "deadline-aware";
  }
  return "none";
}

ArrivalProcess arrival_process_from_string(std::string_view s) {
  if (s == "replay") return ArrivalProcess::kReplay;
  if (s == "poisson") return ArrivalProcess::kPoisson;
  if (s == "flash-crowd") return ArrivalProcess::kFlashCrowd;
  throw util::JsonError(util::format("unknown arrival process '{}'", s));
}

SheddingPolicy shedding_policy_from_string(std::string_view s) {
  if (s == "none") return SheddingPolicy::kNone;
  if (s == "reject-newest") return SheddingPolicy::kRejectNewest;
  if (s == "deadline-aware") return SheddingPolicy::kDeadlineAware;
  throw util::JsonError(util::format("unknown shedding policy '{}'", s));
}

Json qos_to_json(const QosConfig& config) {
  JsonObject arrivals;
  arrivals["process"] = std::string(to_string(config.arrivals.process));
  arrivals["load_multiplier"] = config.arrivals.load_multiplier;
  arrivals["window_s"] = config.arrivals.window_s;
  arrivals["flash_fraction"] = config.arrivals.flash_fraction;
  arrivals["flash_start_s"] = config.arrivals.flash_start_s;
  arrivals["flash_width_s"] = config.arrivals.flash_width_s;

  JsonObject admission;
  admission["policy"] = std::string(to_string(config.admission.policy));
  admission["service_slots"] = config.admission.service_slots;
  admission["queue_capacity"] = config.admission.queue_capacity;
  admission["deadline_s"] = config.admission.deadline_s;
  admission["local_service_s_per_mb"] = config.admission.local_service_s_per_mb;

  JsonObject retry;
  retry["ratio"] = config.retry_budget.ratio;
  retry["burst"] = config.retry_budget.burst;

  JsonObject breaker;
  breaker["enabled"] = config.breaker.enabled;
  breaker["window"] = config.breaker.window;
  breaker["min_samples"] = config.breaker.min_samples;
  breaker["failure_threshold"] = config.breaker.failure_threshold;
  breaker["open_duration_s"] = config.breaker.open_duration_s;
  breaker["half_open_probes"] = config.breaker.half_open_probes;
  breaker["half_open_probe_cap"] = config.breaker.half_open_probe_cap;
  breaker["slow_ratio"] = config.breaker.slow_ratio;

  return Json(JsonObject{
      {"arrivals", Json(std::move(arrivals))},
      {"admission", Json(std::move(admission))},
      {"retry_budget", Json(std::move(retry))},
      {"breaker", Json(std::move(breaker))},
  });
}

namespace {

std::size_t size_or(const Json& json, std::string_view key,
                    std::size_t fallback) {
  const std::int64_t v =
      json.int_or(key, static_cast<std::int64_t>(fallback));
  return v < 0 ? fallback : static_cast<std::size_t>(v);
}

}  // namespace

QosConfig qos_from_json(const Json& json) {
  QosConfig config;
  if (const Json* a = json.find("arrivals"); a != nullptr) {
    config.arrivals.process = arrival_process_from_string(
        a->string_or("process", to_string(config.arrivals.process)));
    config.arrivals.load_multiplier =
        a->number_or("load_multiplier", config.arrivals.load_multiplier);
    config.arrivals.window_s = a->number_or("window_s",
                                            config.arrivals.window_s);
    config.arrivals.flash_fraction =
        a->number_or("flash_fraction", config.arrivals.flash_fraction);
    config.arrivals.flash_start_s =
        a->number_or("flash_start_s", config.arrivals.flash_start_s);
    config.arrivals.flash_width_s =
        a->number_or("flash_width_s", config.arrivals.flash_width_s);
  }
  if (const Json* a = json.find("admission"); a != nullptr) {
    config.admission.policy = shedding_policy_from_string(
        a->string_or("policy", to_string(config.admission.policy)));
    config.admission.service_slots =
        size_or(*a, "service_slots", config.admission.service_slots);
    config.admission.queue_capacity =
        size_or(*a, "queue_capacity", config.admission.queue_capacity);
    config.admission.deadline_s =
        a->number_or("deadline_s", config.admission.deadline_s);
    config.admission.local_service_s_per_mb = a->number_or(
        "local_service_s_per_mb", config.admission.local_service_s_per_mb);
  }
  if (const Json* r = json.find("retry_budget"); r != nullptr) {
    config.retry_budget.ratio = r->number_or("ratio",
                                             config.retry_budget.ratio);
    config.retry_budget.burst = r->number_or("burst",
                                             config.retry_budget.burst);
  }
  if (const Json* b = json.find("breaker"); b != nullptr) {
    config.breaker.enabled = b->bool_or("enabled", config.breaker.enabled);
    config.breaker.window = size_or(*b, "window", config.breaker.window);
    config.breaker.min_samples =
        size_or(*b, "min_samples", config.breaker.min_samples);
    config.breaker.failure_threshold =
        b->number_or("failure_threshold", config.breaker.failure_threshold);
    config.breaker.open_duration_s =
        b->number_or("open_duration_s", config.breaker.open_duration_s);
    config.breaker.half_open_probes =
        size_or(*b, "half_open_probes", config.breaker.half_open_probes);
    config.breaker.half_open_probe_cap =
        size_or(*b, "half_open_probe_cap", config.breaker.half_open_probe_cap);
    config.breaker.slow_ratio =
        b->number_or("slow_ratio", config.breaker.slow_ratio);
  }
  return config;
}

}  // namespace idde::qos
