// JSON parser / writer round-trip and error tests.
#include <gtest/gtest.h>

#include <limits>

#include "util/json.hpp"

namespace {

using idde::util::Json;
using idde::util::JsonArray;
using idde::util::JsonError;
using idde::util::JsonObject;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, WhitespaceTolerant) {
  const Json v = Json::parse("  {\n\t\"a\" : [ 1 , 2 ] }  ");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(JsonParse, NestedStructures) {
  const Json v = Json::parse(R"({"a":{"b":[1,{"c":true}]}})");
  EXPECT_TRUE(v.at("a").at("b").as_array()[1].at("c").as_bool());
}

TEST(JsonParse, StringEscapes) {
  const Json v = Json::parse(R"("line\nbreak \"quoted\" \\ \t A")");
  EXPECT_EQ(v.as_string(), "line\nbreak \"quoted\" \\ \t A");
}

TEST(JsonParse, UnicodeBmpEscapes) {
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(Json::parse("[]").as_array().empty());
  EXPECT_TRUE(Json::parse("{}").as_object().empty());
}

TEST(JsonParse, ErrorsThrow) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW(Json::parse(R"("\ud800")"), JsonError);  // surrogate
}

TEST(JsonDump, CompactRoundTrip) {
  const std::string text =
      R"({"arr":[1,2.5,"x"],"flag":true,"nested":{"z":null}})";
  const Json v = Json::parse(text);
  EXPECT_EQ(Json::parse(v.dump()), v);
}

TEST(JsonDump, IntegersStayIntegral) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
}

TEST(JsonDump, PrettyIndentHasNewlines) {
  const Json v = Json::parse(R"({"a":[1]})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), v);
}

TEST(JsonDump, EscapesControlCharacters) {
  const Json v(std::string("a\nb\x01"));
  const std::string dumped = v.dump();
  EXPECT_NE(dumped.find("\\n"), std::string::npos);
  EXPECT_NE(dumped.find("\\u0001"), std::string::npos);
  EXPECT_EQ(Json::parse(dumped), v);
}

TEST(JsonAccess, TypeMismatchThrows) {
  const Json v(1.5);
  EXPECT_THROW((void)v.as_string(), JsonError);
  EXPECT_THROW((void)v.as_array(), JsonError);
  EXPECT_THROW((void)v.as_object(), JsonError);
  EXPECT_THROW((void)v.as_bool(), JsonError);
  EXPECT_THROW((void)Json("x").as_number(), JsonError);
}

TEST(JsonAccess, AtAndFind) {
  const Json v = Json::parse(R"({"x":1})");
  EXPECT_DOUBLE_EQ(v.at("x").as_number(), 1.0);
  EXPECT_THROW((void)v.at("missing"), JsonError);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_NE(v.find("x"), nullptr);
  EXPECT_EQ(Json(1.0).find("x"), nullptr);  // non-object
}

TEST(JsonAccess, DefaultingAccessors) {
  const Json v = Json::parse(R"({"n":3,"s":"str","b":true})");
  EXPECT_DOUBLE_EQ(v.number_or("n", -1.0), 3.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", -1.0), -1.0);
  EXPECT_EQ(v.int_or("n", -1), 3);
  EXPECT_EQ(v.string_or("s", "d"), "str");
  EXPECT_EQ(v.string_or("n", "d"), "d");  // wrong type -> default
  EXPECT_TRUE(v.bool_or("b", false));
  EXPECT_FALSE(v.bool_or("n", false));
}

TEST(JsonEquality, DeepCompare) {
  EXPECT_EQ(Json::parse("[1,[2,3]]"), Json::parse("[1,[2,3]]"));
  EXPECT_NE(Json::parse("[1,[2,3]]"), Json::parse("[1,[2,4]]"));
}

TEST(JsonBuild, ProgrammaticConstruction) {
  JsonObject obj;
  obj.emplace("k", Json(JsonArray{Json(1), Json("two")}));
  const Json v(std::move(obj));
  EXPECT_EQ(v.at("k").as_array()[1].as_string(), "two");
}

// --- hardening (PR 5): depth limit, duplicate keys, byte offsets ---

TEST(JsonHardening, ErrorsCarryByteOffsets) {
  try {
    (void)Json::parse(R"({"ok": 1, "bad": tru})");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.offset(), 17u);  // the 't' of the bad literal
    EXPECT_NE(std::string(e.what()).find("offset 17"), std::string::npos);
  }
  // Non-parser errors carry no offset.
  try {
    (void)Json(1.0).as_string();
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.offset(), JsonError::npos);
  }
}

TEST(JsonHardening, DuplicateKeysRejected) {
  EXPECT_THROW((void)Json::parse(R"({"a":1,"a":2})"), JsonError);
  EXPECT_THROW((void)Json::parse(R"({"x":{"a":1,"b":2,"a":3}})"), JsonError);
  // Same key at different depths is fine.
  EXPECT_NO_THROW((void)Json::parse(R"({"a":{"a":1}})"));
}

TEST(JsonHardening, DepthLimitStopsNestingBombs) {
  const auto nested = [](std::size_t depth, char open, char close) {
    std::string text(depth, open);
    text.append(depth, close);
    return text;
  };
  EXPECT_NO_THROW(
      (void)Json::parse(nested(Json::kMaxParseDepth, '[', ']')));
  EXPECT_THROW(
      (void)Json::parse(nested(Json::kMaxParseDepth + 1, '[', ']')),
      JsonError);
  // A 100k-deep bomb must throw, not exhaust the stack.
  EXPECT_THROW((void)Json::parse(std::string(100000, '[')), JsonError);
}

TEST(JsonHardening, IntCastGuardsAgainstOverflow) {
  EXPECT_THROW((void)Json(1e300).as_int(), JsonError);
  EXPECT_THROW((void)Json(-1e300).as_int(), JsonError);
  EXPECT_THROW((void)Json(std::numeric_limits<double>::quiet_NaN()).as_int(),
               JsonError);
  EXPECT_EQ(Json(-42.0).as_int(), -42);
}

TEST(JsonHardening, ValidatedAccessors) {
  using idde::util::as_finite;
  using idde::util::as_index;
  using idde::util::as_positive;
  EXPECT_EQ(as_index(Json(3), 5, "idx"), 3u);
  EXPECT_THROW((void)as_index(Json(5), 5, "idx"), JsonError);
  EXPECT_THROW((void)as_index(Json(-1), 5, "idx"), JsonError);
  EXPECT_THROW((void)as_index(Json(1e30), 5, "idx"), JsonError);
  EXPECT_DOUBLE_EQ(as_finite(Json(0.0), 0.0, "v"), 0.0);
  EXPECT_THROW((void)as_finite(Json(-0.5), 0.0, "v"), JsonError);
  EXPECT_THROW(
      (void)as_finite(Json(std::numeric_limits<double>::infinity()), 0.0, "v"),
      JsonError);
  EXPECT_DOUBLE_EQ(as_positive(Json(2.5), "v"), 2.5);
  EXPECT_THROW((void)as_positive(Json(0.0), "v"), JsonError);
}

}  // namespace
