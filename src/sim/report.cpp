#include "sim/report.hpp"

#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/stats.hpp"

namespace idde::sim {

std::string metric_name(Metric metric) {
  switch (metric) {
    case Metric::kRate: return "R_avg (MB/s)";
    case Metric::kLatency: return "L_avg (ms)";
    case Metric::kSolveTime: return "time (ms)";
  }
  return "?";
}

namespace {

double cell_value(const CellResult& cell, Metric metric) {
  switch (metric) {
    case Metric::kRate: return cell.rate_mbps.mean;
    case Metric::kLatency: return cell.latency_ms.mean;
    case Metric::kSolveTime: return cell.solve_ms.mean;
  }
  return 0.0;
}

}  // namespace

util::TextTable series_table(const std::vector<PointResult>& results,
                             Metric metric, std::string x_label) {
  IDDE_EXPECTS(!results.empty());
  std::vector<std::string> header{std::move(x_label)};
  for (const CellResult& cell : results.front().cells) {
    header.push_back(cell.approach);
  }
  util::TextTable table(std::move(header));
  for (const PointResult& point : results) {
    auto row = table.start_row();
    row.add(point.label);
    for (const CellResult& cell : point.cells) {
      row.add(cell_value(cell, metric), metric == Metric::kSolveTime ? 3 : 2);
    }
  }
  return table;
}

void write_csv(std::ostream& out, const std::vector<PointResult>& results,
               std::string_view x_label) {
  util::CsvWriter csv(out, {std::string(x_label), "approach", "metric", "mean",
                            "ci95", "n"});
  const auto emit = [&](const PointResult& point, const CellResult& cell,
                        std::string_view metric, const util::Estimate& est) {
    csv.start_row()
        .add(point.label)
        .add(cell.approach)
        .add(metric)
        .add(est.mean)
        .add(est.half_width)
        .add(est.n);
  };
  for (const PointResult& point : results) {
    for (const CellResult& cell : point.cells) {
      emit(point, cell, "rate_mbps", cell.rate_mbps);
      emit(point, cell, "latency_ms", cell.latency_ms);
      emit(point, cell, "solve_ms", cell.solve_ms);
    }
  }
}

std::vector<Advantage> advantages_of(const std::vector<PointResult>& results,
                                     const std::string& ours) {
  std::vector<Advantage> advantages;
  if (results.empty()) return advantages;
  for (std::size_t a = 0; a < results.front().cells.size(); ++a) {
    const std::string& other = results.front().cells[a].approach;
    if (other == ours) continue;
    double rate_gain = 0.0;
    double latency_red = 0.0;
    std::size_t n = 0;
    for (const PointResult& point : results) {
      const CellResult* ours_cell = nullptr;
      const CellResult* other_cell = nullptr;
      for (const CellResult& cell : point.cells) {
        if (cell.approach == ours) ours_cell = &cell;
        if (cell.approach == other) other_cell = &cell;
      }
      if (ours_cell == nullptr || other_cell == nullptr) continue;
      rate_gain += util::relative_gain(ours_cell->rate_mbps.mean,
                                       other_cell->rate_mbps.mean);
      latency_red += util::relative_reduction(ours_cell->latency_ms.mean,
                                              other_cell->latency_ms.mean);
      ++n;
    }
    if (n == 0) continue;
    advantages.push_back(Advantage{
        .versus = other,
        .rate_gain_pct = 100.0 * rate_gain / static_cast<double>(n),
        .latency_reduction_pct = 100.0 * latency_red / static_cast<double>(n),
    });
  }
  return advantages;
}

}  // namespace idde::sim
